package sparse

// Conversions between the four matrix formats. All conversions preserve
// the nonzero set exactly; CSR/CSC outputs always satisfy Validate.

// ToCSR converts a normalized COO matrix to CSR.
func (m *COO) ToCSR() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: make([]int, len(m.Entries)),
		Val:    make([]float64, len(m.Entries)),
	}
	for _, e := range m.Entries {
		out.RowPtr[e.Row+1]++
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	// Entries are row-major after Normalize, so a straight copy lands each
	// row's columns already sorted.
	for i, e := range m.Entries {
		out.ColIdx[i] = e.Col
		out.Val[i] = e.Val
	}
	return out
}

// ToCSC converts a normalized COO matrix to CSC.
func (m *COO) ToCSC() *CSC {
	return m.ToCSR().ToCSC()
}

// ToDense expands a COO matrix to dense form.
func (m *COO) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for _, e := range m.Entries {
		d.Add(e.Row, e.Col, e.Val)
	}
	return d
}

// ToCOO converts a CSR matrix to normalized COO.
func (m *CSR) ToCOO() *COO {
	out := &COO{Rows: m.Rows, Cols: m.Cols, Entries: make([]Entry, 0, m.NNZ())}
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			out.Entries = append(out.Entries, Entry{Row: r, Col: m.ColIdx[i], Val: m.Val[i]})
		}
	}
	return out
}

// ToCSC converts CSR to CSC with a counting pass (no sort needed; scanning
// rows in order leaves each column's row indices sorted).
func (m *CSR) ToCSC() *CSC {
	out := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int, m.Cols+1),
		RowIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	next := make([]int, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.ColIdx[i]
			out.RowIdx[next[c]] = r
			out.Val[next[c]] = m.Val[i]
			next[c]++
		}
	}
	return out
}

// ToCSCPattern is ToCSC without the value scatter: the returned CSC has
// a nil Val. Pattern-only consumers — the accelerator simulator's
// traversal orders, tile bins and analytic bounds are all
// value-independent — skip allocating and filling NNZ float64s.
func (m *CSR) ToCSCPattern() *CSC {
	out := &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: make([]int, m.Cols+1),
		RowIdx: make([]int, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	next := make([]int, m.Cols)
	copy(next, out.ColPtr[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.ColIdx[i]
			out.RowIdx[next[c]] = r
			next[c]++
		}
	}
	return out
}

// ToDense expands a CSR matrix to dense form.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			d.Set(r, m.ColIdx[i], m.Val[i])
		}
	}
	return d
}

// Transpose returns the CSR form of the transpose. It reuses the CSC
// conversion: the CSC arrays of A are exactly the CSR arrays of Aᵀ.
func (m *CSR) Transpose() *CSR {
	csc := m.ToCSC()
	return &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: csc.ColPtr, ColIdx: csc.RowIdx, Val: csc.Val}
}

// ToCSR converts CSC to CSR.
func (m *CSC) ToCSR() *CSR {
	out := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, r := range m.RowIdx {
		out.RowPtr[r+1]++
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	next := make([]int, m.Rows)
	copy(next, out.RowPtr[:m.Rows])
	for c := 0; c < m.Cols; c++ {
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			r := m.RowIdx[i]
			out.ColIdx[next[r]] = c
			out.Val[next[r]] = m.Val[i]
			next[r]++
		}
	}
	return out
}

// ToDense expands a CSC matrix to dense form.
func (m *CSC) ToDense() *Dense { return m.ToCSR().ToDense() }

// ToCSR converts a dense matrix to CSR, dropping exact zeros.
func (m *Dense) ToCSR() *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if v := m.At(r, c); v != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, v)
			}
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out
}

// ToCOO converts a dense matrix to normalized COO, dropping exact zeros.
func (m *Dense) ToCOO() *COO { return m.ToCSR().ToCOO() }

// EqualCSR reports exact structural and value equality of two CSR matrices.
func EqualCSR(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}
