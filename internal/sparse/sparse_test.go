package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCOONormalizeSortsAndCoalesces(t *testing.T) {
	m := NewCOO(3, 3)
	m.Append(2, 1, 1)
	m.Append(0, 0, 2)
	m.Append(2, 1, 3)
	m.Append(1, 2, 4)
	m.Normalize()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 after coalescing", m.NNZ())
	}
	if got := m.Entries[2]; got.Row != 2 || got.Col != 1 || got.Val != 4 {
		t.Fatalf("coalesced entry = %+v, want {2 1 4}", got)
	}
}

func TestCOOValidateDetectsOutOfRange(t *testing.T) {
	m := NewCOO(2, 2)
	m.Append(2, 0, 1)
	m.Normalize()
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range row")
	}
}

func TestCSRAt(t *testing.T) {
	m := NewCOO(3, 4)
	m.Append(0, 1, 5)
	m.Append(2, 3, -2)
	m.Normalize()
	c := m.ToCSR()
	if got := c.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %v, want 5", got)
	}
	if got := c.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
	if got := c.At(2, 3); got != -2 {
		t.Errorf("At(2,3) = %v, want -2", got)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(5)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", m.NNZ())
	}
	for i := 0; i < 5; i++ {
		if m.At(i, i) != 1 {
			t.Errorf("At(%d,%d) = %v, want 1", i, i, m.At(i, i))
		}
	}
}

func TestDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Uniform(rng, 100, 100, 0.1)
	if got := m.Density(); math.Abs(got-0.1) > 0.01 {
		t.Errorf("Density = %v, want ~0.1", got)
	}
	if m.NNZ() != 1000 {
		t.Errorf("NNZ = %d, want exactly 1000", m.NNZ())
	}
}

func TestUniformDensityClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Uniform(rng, 10, 10, 1.5)
	if m.NNZ() != 100 {
		t.Errorf("NNZ = %d, want 100 for clamped density", m.NNZ())
	}
	m = Uniform(rng, 10, 10, -0.5)
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0 for negative density", m.NNZ())
	}
}

func TestDenseRandomIsFullyDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := DenseRandom(rng, 7, 9)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NNZ() != 63 {
		t.Errorf("NNZ = %d, want 63", m.NNZ())
	}
}

func TestBandedKeepsDiagonalAndBand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Banded(rng, 50, 50, 3, 0.5)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for r := 0; r < 50; r++ {
		cols, _ := m.Row(r)
		if m.At(r, r) == 0 {
			t.Fatalf("diagonal (%d,%d) missing", r, r)
		}
		for _, c := range cols {
			if d := c - r; d < -3 || d > 3 {
				t.Fatalf("entry (%d,%d) outside band", r, c)
			}
		}
	}
}

func TestPowerLawDegreesAreSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := PowerLaw(rng, 500, 500, 5000, 2.0)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	maxRow, sum := 0, 0
	for r := 0; r < m.Rows; r++ {
		n := m.RowNNZ(r)
		sum += n
		if n > maxRow {
			maxRow = n
		}
	}
	avg := float64(sum) / float64(m.Rows)
	if float64(maxRow) < 5*avg {
		t.Errorf("max row %d not skewed vs avg %.1f", maxRow, avg)
	}
}

func TestImbalancedConcentratesNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := Imbalanced(rng, 200, 200, 4000, 0.05, 0.8)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	maxRow := 0
	for r := 0; r < m.Rows; r++ {
		if n := m.RowNNZ(r); n > maxRow {
			maxRow = n
		}
	}
	avg := float64(m.NNZ()) / float64(m.Rows)
	if float64(maxRow) < 4*avg {
		t.Errorf("imbalance too small: max %d vs avg %.1f", maxRow, avg)
	}
}

func TestDNNPrunedStructuredDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := DNNPruned(rng, 256, 512, 0.2, true, 8)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := m.Density(); math.Abs(d-0.2) > 0.05 {
		t.Errorf("density = %v, want ~0.2", d)
	}
	// Structured pruning keeps whole groups: within any kept group of 8,
	// all columns should be present for that row.
	cols, _ := m.Row(0)
	groups := map[int]int{}
	for _, c := range cols {
		groups[c/8]++
	}
	for g, n := range groups {
		if n != 8 {
			t.Errorf("group %d has %d columns, want full group of 8", g, n)
		}
	}
}

// randCSR builds a random valid CSR from quick-check inputs.
func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	return Uniform(rng, rows, cols, density)
}

func TestPropertyConversionRoundTrips(t *testing.T) {
	f := func(seed int64, rowsIn, colsIn uint8, densIn uint8) bool {
		rows := int(rowsIn)%40 + 1
		cols := int(colsIn)%40 + 1
		density := float64(densIn%100) / 100
		rng := rand.New(rand.NewSource(seed))
		m := randCSR(rng, rows, cols, density)
		if m.Validate() != nil {
			return false
		}
		// CSR -> COO -> CSR
		if !EqualCSR(m, m.ToCOO().ToCSR()) {
			return false
		}
		// CSR -> CSC -> CSR
		if !EqualCSR(m, m.ToCSC().ToCSR()) {
			return false
		}
		// CSR -> Dense -> CSR (values are never exactly zero by construction)
		if !EqualCSR(m, m.ToDense().ToCSR()) {
			return false
		}
		// Transpose twice is identity.
		return EqualCSR(m, m.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeSwapsAt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randCSR(rng, 15, 23, 0.2)
		tr := m.Transpose()
		if tr.Rows != m.Cols || tr.Cols != m.Rows {
			return false
		}
		for r := 0; r < m.Rows; r++ {
			cols, vals := m.Row(r)
			for i, c := range cols {
				if tr.At(c, r) != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCSCValidAfterConversion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randCSR(rng, 20, 20, 0.3)
		return m.ToCSC().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseAlmostEqual(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	a.Set(0, 0, 1.0)
	b.Set(0, 0, 1.0+1e-12)
	if !a.AlmostEqual(b, 1e-9) {
		t.Error("AlmostEqual rejected tiny difference")
	}
	b.Set(1, 1, 0.5)
	if a.AlmostEqual(b, 1e-9) {
		t.Error("AlmostEqual accepted large difference")
	}
	if a.AlmostEqual(NewDense(2, 3), 1e-9) {
		t.Error("AlmostEqual accepted shape mismatch")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	b.Set(1, 0, -3)
	if got := a.MaxAbsDiff(b); got != 3 {
		t.Errorf("MaxAbsDiff = %v, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxAbsDiff did not panic on shape mismatch")
		}
	}()
	a.MaxAbsDiff(NewDense(1, 1))
}
