package sparse

import (
	"math"
	"math/rand"
)

// Generators for the sparsity-pattern families the paper evaluates.
// Each takes an explicit *rand.Rand so corpora are reproducible.

// sampleRow fills row r of a COO matrix with k distinct random columns.
// For k close to cols it switches to a dense Bernoulli-style scan to avoid
// quadratic rejection sampling.
func sampleRow(rng *rand.Rand, m *COO, r, cols, k int) {
	if k <= 0 {
		return
	}
	if k > cols {
		k = cols
	}
	if k*3 >= cols {
		// Reservoir-free selection: choose k of cols via partial shuffle.
		perm := rng.Perm(cols)[:k]
		for _, c := range perm {
			m.Append(r, c, randVal(rng))
		}
		return
	}
	seen := make(map[int]struct{}, k)
	for len(seen) < k {
		c := rng.Intn(cols)
		if _, ok := seen[c]; ok {
			continue
		}
		seen[c] = struct{}{}
		m.Append(r, c, randVal(rng))
	}
}

// randVal draws a nonzero value uniform in [-1, 1) excluding exact zero.
func randVal(rng *rand.Rand) float64 {
	for {
		v := rng.Float64()*2 - 1
		if v != 0 {
			return v
		}
	}
}

// Uniform generates a rows×cols matrix with the given density where every
// position is equally likely to be nonzero. Row populations are fixed at
// round(density*cols) per row (with remainder spread over leading rows) so
// the target nnz is met exactly.
func Uniform(rng *rand.Rand, rows, cols int, density float64) *CSR {
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	total := int(math.Round(density * float64(rows) * float64(cols)))
	return UniformNNZ(rng, rows, cols, total)
}

// UniformNNZ generates a rows×cols matrix with exactly nnz uniformly
// placed nonzeros (capped at rows*cols).
func UniformNNZ(rng *rand.Rand, rows, cols, nnz int) *CSR {
	if nnz > rows*cols {
		nnz = rows * cols
	}
	m := NewCOO(rows, cols)
	if rows > 0 {
		base, rem := nnz/rows, nnz%rows
		for r := 0; r < rows; r++ {
			k := base
			if r < rem {
				k++
			}
			sampleRow(rng, m, r, cols, k)
		}
	}
	m.Normalize()
	return m.ToCSR()
}

// PowerLaw generates a graph-like matrix whose row degrees follow a
// truncated power law with exponent alpha (alpha around 1.5–2.5 mimics
// web/social/peer-to-peer graphs such as p2p-Gnutella or wiki-RfA).
// The total nonzero count approximates nnz.
func PowerLaw(rng *rand.Rand, rows, cols, nnz int, alpha float64) *CSR {
	if rows == 0 || cols == 0 || nnz <= 0 {
		return NewCOO(rows, cols).ToCSR()
	}
	// Draw unnormalized degrees d_r ∝ (r+1)^-alpha, scale to hit nnz, and
	// waterfill: head rows that saturate at cols hand their overflow to
	// the rows that still have headroom, so the target nnz is met even
	// for dense-headed degree distributions.
	weights := make([]float64, rows)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -alpha)
	}
	degrees := make([]int, rows)
	remaining := nnz
	for pass := 0; pass < 8 && remaining > 0; pass++ {
		sum := 0.0
		for i, w := range weights {
			if degrees[i] < cols {
				sum += w
			}
		}
		if sum == 0 {
			break
		}
		progress := false
		for i, w := range weights {
			if degrees[i] >= cols {
				continue
			}
			k := int(math.Round(w / sum * float64(remaining)))
			if pass == 0 && k < 1 {
				k = 1
			}
			if degrees[i]+k > cols {
				k = cols - degrees[i]
			}
			if k > 0 {
				degrees[i] += k
				progress = true
			}
		}
		assigned := 0
		for _, d := range degrees {
			assigned += d
		}
		remaining = nnz - assigned
		if !progress {
			break
		}
	}
	perm := rng.Perm(rows)
	m := NewCOO(rows, cols)
	for i, p := range perm {
		sampleRow(rng, m, p, cols, degrees[i])
	}
	m.Normalize()
	return m.ToCSR()
}

// Banded generates a scientific-computing style banded matrix: nonzeros
// lie within |r-c| <= halfBandwidth and appear with probability fill.
// FEM/CFD matrices (goodwin, sme3Db, ramage02) have this character.
func Banded(rng *rand.Rand, rows, cols, halfBandwidth int, fill float64) *CSR {
	m := NewCOO(rows, cols)
	for r := 0; r < rows; r++ {
		lo := r - halfBandwidth
		if lo < 0 {
			lo = 0
		}
		hi := r + halfBandwidth
		if hi >= cols {
			hi = cols - 1
		}
		for c := lo; c <= hi; c++ {
			if c == r && c < cols {
				// Keep the diagonal: solvers rely on it, and it dominates
				// the band structure the feature extractor sees.
				m.Append(r, c, randVal(rng))
				continue
			}
			if rng.Float64() < fill {
				m.Append(r, c, randVal(rng))
			}
		}
	}
	m.Normalize()
	return m.ToCSR()
}

// Block generates a block-structured matrix: the rows×cols grid is split
// into blockSize×blockSize tiles; each tile is active with probability
// blockDensity, and active tiles are filled at innerDensity. Structured
// circuit and multi-physics matrices (opt1, gupta2) look like this.
func Block(rng *rand.Rand, rows, cols, blockSize int, blockDensity, innerDensity float64) *CSR {
	if blockSize < 1 {
		blockSize = 1
	}
	m := NewCOO(rows, cols)
	for br := 0; br < rows; br += blockSize {
		for bc := 0; bc < cols; bc += blockSize {
			if rng.Float64() >= blockDensity {
				continue
			}
			rmax := min(br+blockSize, rows)
			cmax := min(bc+blockSize, cols)
			for r := br; r < rmax; r++ {
				for c := bc; c < cmax; c++ {
					if rng.Float64() < innerDensity {
						m.Append(r, c, randVal(rng))
					}
				}
			}
		}
	}
	m.Normalize()
	return m.ToCSR()
}

// DNNPruned generates a weight-matrix-like pattern at the given density.
// When structured is true, pruning removes whole groups of `group`
// consecutive columns per row (mimicking STR-style structured pruning used
// for the paper's MS workloads); otherwise pruning is unstructured.
func DNNPruned(rng *rand.Rand, rows, cols int, density float64, structured bool, group int) *CSR {
	if !structured {
		return Uniform(rng, rows, cols, density)
	}
	if group < 1 {
		group = 4
	}
	m := NewCOO(rows, cols)
	groupsPerRow := (cols + group - 1) / group
	keep := int(math.Round(density * float64(groupsPerRow)))
	if keep < 1 && density > 0 {
		keep = 1
	}
	for r := 0; r < rows; r++ {
		for _, g := range rng.Perm(groupsPerRow)[:keep] {
			lo := g * group
			hi := min(lo+group, cols)
			for c := lo; c < hi; c++ {
				m.Append(r, c, randVal(rng))
			}
		}
	}
	m.Normalize()
	return m.ToCSR()
}

// DenseRandom generates a fully dense matrix with uniform values, in CSR
// form, e.g. the D operand of MS×D workloads.
func DenseRandom(rng *rand.Rand, rows, cols int) *CSR {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	m.ColIdx = make([]int, 0, rows*cols)
	m.Val = make([]float64, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, randVal(rng))
		}
		m.RowPtr[r+1] = len(m.ColIdx)
	}
	return m
}

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// Imbalanced generates a matrix where a fraction of "heavy" rows hold most
// nonzeros, producing the high A_load_imbalance_row values that drive the
// selector toward Design 3.
func Imbalanced(rng *rand.Rand, rows, cols, nnz int, heavyFrac, heavyShare float64) *CSR {
	heavyRows := int(float64(rows) * heavyFrac)
	if heavyRows < 1 {
		heavyRows = 1
	}
	heavyNNZ := int(float64(nnz) * heavyShare)
	lightNNZ := nnz - heavyNNZ
	m := NewCOO(rows, cols)
	perm := rng.Perm(rows)
	for i, r := range perm {
		var k int
		if i < heavyRows {
			k = heavyNNZ / heavyRows
		} else if rows > heavyRows {
			k = lightNNZ / (rows - heavyRows)
		}
		sampleRow(rng, m, r, cols, k)
	}
	m.Normalize()
	return m.ToCSR()
}
