package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Matrix Market exchange format support (coordinate real general), the
// format the SuiteSparse collection uses. Only the subset needed to load
// and store SpGEMM inputs is implemented.

// WriteMatrixMarket writes m in MatrixMarket coordinate format (1-based
// indices, "%%MatrixMarket matrix coordinate real general" header).
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for r := 0; r < m.Rows; r++ {
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, m.ColIdx[i]+1, m.Val[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into CSR. It
// accepts "general", "symmetric" (mirrored off-diagonal entries) and
// "pattern" (values set to 1) qualifiers.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket header %q", sc.Text())
	}
	pattern := header[3] == "pattern"
	symmetric := len(header) >= 5 && header[4] == "symmetric"

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %v", line, err)
		}
		break
	}
	m := &COO{Rows: rows, Cols: cols, Entries: make([]Entry, 0, nnz)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad MatrixMarket entry %q", line)
		}
		ri, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %v", f[0], err)
		}
		ci, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if !pattern {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value in entry %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %v", f[2], err)
			}
		}
		m.Append(ri-1, ci-1, v)
		if symmetric && ri != ci {
			m.Append(ci-1, ri-1, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m.ToCSR(), nil
}
