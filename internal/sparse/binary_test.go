package sparse

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// binaryCorpus spans the generator families plus the degenerate shapes
// (empty matrix, empty rows, single row/column) the wire validator has
// to frame correctly.
func binaryCorpus(t testing.TB) []*CSR {
	rng := rand.New(rand.NewSource(88))
	ms := []*CSR{
		{Rows: 0, Cols: 0, RowPtr: []int{0}},
		{Rows: 3, Cols: 5, RowPtr: []int{0, 0, 0, 0}, ColIdx: []int{}, Val: []float64{}},
		Identity(1),
		Identity(7),
		Uniform(rng, 64, 48, 0.05),
		PowerLaw(rng, 80, 80, 400, 1.2),
		Banded(rng, 60, 60, 3, 0.8),
		Block(rng, 64, 64, 8, 0.3, 0.5),
		DNNPruned(rng, 48, 96, 0.1, true, 4),
		Imbalanced(rng, 72, 40, 300, 0.1, 0.7),
		DenseRandom(rng, 12, 9),
	}
	for i, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatalf("corpus matrix %d invalid: %v", i, err)
		}
	}
	return ms
}

func csrEqual(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	for i, m := range binaryCorpus(t) {
		buf := EncodeBinary(m)
		if len(buf) != EncodedSize(m) {
			t.Fatalf("matrix %d: encoded %d bytes, EncodedSize says %d", i, len(buf), EncodedSize(m))
		}
		got, err := DecodeBinary(buf)
		if err != nil {
			t.Fatalf("matrix %d: decode: %v", i, err)
		}
		if !csrEqual(m, got) {
			t.Fatalf("matrix %d: round trip mismatch", i)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("matrix %d: decoded matrix invalid: %v", i, err)
		}
	}
}

// TestBinaryRoundTripMisaligned forces the copy path by parsing from an
// odd offset into a larger buffer, so the alias gate must reject it.
func TestBinaryRoundTripMisaligned(t *testing.T) {
	for i, m := range binaryCorpus(t) {
		shifted := append(make([]byte, 0, EncodedSize(m)+1), 0xEE)
		shifted = AppendBinary(shifted, m)
		v, rest, err := ParseWire(shifted[1:])
		if err != nil {
			t.Fatalf("matrix %d: parse at offset 1: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("matrix %d: %d trailing bytes", i, len(rest))
		}
		if aliasable && v.aligned() && m.NNZ() > 0 {
			t.Fatalf("matrix %d: offset-1 buffer reported aligned", i)
		}
		got := v.Decode()
		if !csrEqual(m, got) {
			t.Fatalf("matrix %d: misaligned round trip mismatch", i)
		}
	}
}

// TestWireFingerprintMatchesDecoded is the zero-copy cache-key guarantee:
// hashing the raw wire image must equal hashing the decoded struct, which
// must equal the original matrix's fingerprint.
func TestWireFingerprintMatchesDecoded(t *testing.T) {
	for i, m := range binaryCorpus(t) {
		buf := EncodeBinary(m)
		v, _, err := ParseWire(buf)
		if err != nil {
			t.Fatalf("matrix %d: parse: %v", i, err)
		}
		want := m.Fingerprint()
		if got := v.Fingerprint(); got != want {
			t.Fatalf("matrix %d: wire fingerprint %v != matrix fingerprint %v", i, got, want)
		}
		if got := v.Decode().Fingerprint(); got != want {
			t.Fatalf("matrix %d: decoded fingerprint %v != matrix fingerprint %v", i, got, want)
		}
	}
}

// TestParseWireSequence checks that concatenated blobs parse back out in
// order — the framing used by binary analyze bodies (exactly two blobs)
// and batch bodies (2N blobs).
func TestParseWireSequence(t *testing.T) {
	ms := binaryCorpus(t)
	var buf []byte
	for _, m := range ms {
		buf = AppendBinary(buf, m)
	}
	rest := buf
	for i, m := range ms {
		v, r, err := ParseWire(rest)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if !csrEqual(m, v.Decode()) {
			t.Fatalf("blob %d: mismatch", i)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after the last blob", len(rest))
	}
}

// TestDecodeCopyIndependent: DecodeCopy results must not alias the wire
// buffer (verify jobs outlive the pooled request body).
func TestDecodeCopyIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Uniform(rng, 32, 32, 0.1)
	buf := EncodeBinary(m)
	v, _, err := ParseWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	cp := v.DecodeCopy()
	for i := range buf {
		buf[i] = 0xFF
	}
	if !csrEqual(m, cp) {
		t.Fatal("DecodeCopy result changed when the wire buffer was clobbered")
	}
}

// corrupt returns enc with one mutation applied; each case must be
// rejected by ParseWire with an error wrapping ErrWire.
func TestDecodeBinaryRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := Uniform(rng, 16, 16, 0.2)
	enc := EncodeBinary(m)
	nnz := uint64(m.NNZ())
	cases := map[string]func([]byte) []byte{
		"empty":             func(b []byte) []byte { return nil },
		"truncated header":  func(b []byte) []byte { return b[:16] },
		"truncated body":    func(b []byte) []byte { return b[:len(b)-8] },
		"bad magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":       func(b []byte) []byte { b[4] = 9; return b },
		"reserved nonzero":  func(b []byte) []byte { b[6] = 1; return b },
		"rows over cap":     func(b []byte) []byte { binary.LittleEndian.PutUint64(b[8:], 1<<40); return b },
		"cols over cap":     func(b []byte) []byte { binary.LittleEndian.PutUint64(b[16:], 1<<40); return b },
		"nnz over cap":      func(b []byte) []byte { binary.LittleEndian.PutUint64(b[24:], 1<<40); return b },
		"nnz over capacity": func(b []byte) []byte { binary.LittleEndian.PutUint64(b[24:], 16*16+1); return b },
		"nnz in empty shape": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 0)
			binary.LittleEndian.PutUint64(b[24:], 1)
			return b
		},
		"rowptr[0] nonzero": func(b []byte) []byte { binary.LittleEndian.PutUint64(b[32:], 1); return b },
		"rowptr decreases": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32+8:], nnz)
			return b
		},
		"rowptr overflows nnz": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32+8:], nnz+1)
			return b
		},
		"rowptr[rows] short": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32+8*uint64(m.Rows):], nnz-1)
			return b
		},
		"column out of range": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32+8*uint64(m.Rows+1):], 16)
			return b
		},
		"column negative as uint": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32+8*uint64(m.Rows+1):], math.MaxUint64)
			return b
		},
		"columns not increasing": func(b []byte) []byte {
			// First row has >= 2 entries with this seed; swap its first two columns.
			off := 32 + 8*uint64(m.Rows+1)
			a := binary.LittleEndian.Uint64(b[off:])
			c := binary.LittleEndian.Uint64(b[off+8:])
			binary.LittleEndian.PutUint64(b[off:], c)
			binary.LittleEndian.PutUint64(b[off+8:], a)
			return b
		},
		"trailing bytes": func(b []byte) []byte { return append(b, 0) },
	}
	if m.RowNNZ(0) < 2 {
		t.Fatal("test seed no longer gives row 0 two entries; pick another seed")
	}
	for name, mutate := range cases {
		b := mutate(bytes.Clone(enc))
		if _, err := DecodeBinary(b); !errors.Is(err, ErrWire) {
			t.Errorf("%s: got %v, want ErrWire", name, err)
		}
	}
	// The untouched encoding still decodes (the mutations above are the
	// reason for each failure, not a broken fixture).
	if _, err := DecodeBinary(enc); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}
}

// TestDecodeBinarySteadyStateZeroAllocs pins the serving-path guarantee:
// once a reusable CSR and an aligned buffer exist, decoding is free.
func TestDecodeBinarySteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := Uniform(rng, 256, 256, 0.02)
	buf := EncodeBinary(m)
	var dst CSR
	if _, err := DecodeBinaryInto(&dst, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeBinaryInto(&dst, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeBinaryInto: %v allocs/op, want 0", allocs)
	}
	// The copy path is also allocation-free once dst capacity is warm.
	shifted := append(make([]byte, 0, len(buf)+1), 0xEE)
	shifted = append(shifted, buf...)
	var cdst CSR
	v, _, err := ParseWire(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	v.DecodeInto(&cdst)
	allocs = testing.AllocsPerRun(100, func() {
		v.DecodeInto(&cdst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state copy DecodeInto: %v allocs/op, want 0", allocs)
	}
}

func FuzzDecodeBinary(f *testing.F) {
	for _, m := range []*CSR{
		{Rows: 0, Cols: 0, RowPtr: []int{0}},
		Identity(3),
		Uniform(rand.New(rand.NewSource(1)), 12, 10, 0.2),
	} {
		f.Add(EncodeBinary(m))
	}
	f.Add([]byte("MCSR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeBinary(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("decode error outside ErrWire: %v", err)
			}
			return
		}
		// Anything the decoder accepts must satisfy the full CSR
		// invariants and re-encode to the identical byte image.
		if verr := m.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid matrix: %v", verr)
		}
		re := EncodeBinary(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted input (len %d vs %d)", len(re), len(data))
		}
		if m.Fingerprint() != mustView(t, data).Fingerprint() {
			t.Fatal("wire fingerprint differs from decoded fingerprint")
		}
	})
}

func mustView(t *testing.T, data []byte) WireView {
	v, _, err := ParseWire(data)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func BenchmarkEncodeBinary(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := Uniform(rng, 2000, 2000, 0.01)
	buf := make([]byte, 0, EncodedSize(m))
	b.SetBytes(int64(EncodedSize(m)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBinary(buf[:0], m)
	}
	_ = buf
}

func BenchmarkDecodeBinarySteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := Uniform(rng, 2000, 2000, 0.01)
	buf := EncodeBinary(m)
	var dst CSR
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinaryInto(&dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}
