package sparse

import (
	"math/rand"
	"testing"
)

// cloneCSR deep-copies a CSR so mutation tests can flip one field at a
// time without aliasing the original.
func cloneCSR(m *CSR) *CSR {
	return &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
}

func TestFingerprintEqualContent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Uniform(rng, 200, 300, 0.05)

	// A separately built structural copy must hash identically.
	b := cloneCSR(a)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("separately built CSRs with equal content hash differently")
	}
	// And the fingerprint must be a pure function of content.
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
}

func TestFingerprintMutationSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := Uniform(rng, 64, 80, 0.08)
	if base.NNZ() < 8 {
		t.Fatalf("test matrix too sparse: %d nnz", base.NNZ())
	}
	ref := base.Fingerprint()

	check := func(name string, mut func(m *CSR)) {
		t.Helper()
		m := cloneCSR(base)
		mut(m)
		if m.Fingerprint() == ref {
			t.Errorf("%s: fingerprint unchanged after mutation", name)
		}
	}

	check("rows+1", func(m *CSR) { m.Rows++ })
	check("cols+1", func(m *CSR) { m.Cols++ })
	// Every single value flip must change the hash.
	for i := range base.Val {
		i := i
		check("val", func(m *CSR) { m.Val[i] += 1.0 })
	}
	// Every single column-index nudge must change the hash.
	for i := range base.ColIdx {
		i := i
		check("colidx", func(m *CSR) { m.ColIdx[i] = (m.ColIdx[i] + 1) % m.Cols })
	}
	// Every interior row-pointer nudge must change the hash.
	for i := 1; i < len(base.RowPtr)-1; i++ {
		i := i
		check("rowptr", func(m *CSR) { m.RowPtr[i]++ })
	}
	// Sign and tiny-value flips reach the hash through Float64bits.
	check("negate", func(m *CSR) { m.Val[0] = -m.Val[0] })
	check("negzero", func(m *CSR) { m.Val[0] = 0 }) // 0 vs stored value
}

func TestFingerprintDistinguishesTransposedDims(t *testing.T) {
	// Same flattened content, swapped dimensions: a classic weak-hash trap.
	a := &CSR{Rows: 2, Cols: 3, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 1}, Val: []float64{1, 2}}
	b := &CSR{Rows: 3, Cols: 2, RowPtr: []int{0, 1, 2, 2}, ColIdx: []int{0, 1}, Val: []float64{1, 2}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different shapes hash equal")
	}
}

func TestFingerprintPairwiseCollisions(t *testing.T) {
	// A small battery of distinct random matrices must produce distinct
	// fingerprints — a smoke test for gross mixing bugs, not a
	// collision-resistance proof.
	rng := rand.New(rand.NewSource(3))
	seen := make(map[Fingerprint]int)
	for i := 0; i < 200; i++ {
		m := Uniform(rng, 10+rng.Intn(50), 10+rng.Intn(50), 0.02+rng.Float64()*0.2)
		fp := m.Fingerprint()
		if j, ok := seen[fp]; ok {
			t.Fatalf("matrices %d and %d collide", j, i)
		}
		seen[fp] = i
	}
}

func BenchmarkFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := Uniform(rng, 4000, 4000, 0.01)
	b.SetBytes(int64(8 * (len(m.RowPtr) + len(m.ColIdx) + len(m.Val))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fingerprint()
	}
}
