package sparse

import "strings"

// Spy renders the matrix's sparsity footprint as an ASCII density plot,
// the textual equivalent of the matrix thumbnails in the paper's
// Figure 3. The matrix is partitioned into a width×height grid of cells;
// each cell prints a glyph by its nonzero density: ' ' empty, '.' < 1 %,
// ':' < 10 %, '+' < 40 %, '#' otherwise.
func Spy(m *CSR, width, height int) string {
	if width < 1 {
		width = 32
	}
	if height < 1 {
		height = 16
	}
	if m.Rows == 0 || m.Cols == 0 {
		return strings.Repeat(strings.Repeat(" ", width)+"\n", height)
	}
	if height > m.Rows {
		height = m.Rows
	}
	if width > m.Cols {
		width = m.Cols
	}
	counts := make([]int, width*height)
	for r := 0; r < m.Rows; r++ {
		gr := r * height / m.Rows
		cols, _ := m.Row(r)
		for _, c := range cols {
			counts[gr*width+c*width/m.Cols]++
		}
	}
	var sb strings.Builder
	sb.Grow((width + 3) * height)
	for gr := 0; gr < height; gr++ {
		sb.WriteByte('|')
		for gc := 0; gc < width; gc++ {
			// Cell area in original coordinates.
			r0, r1 := gr*m.Rows/height, (gr+1)*m.Rows/height
			c0, c1 := gc*m.Cols/width, (gc+1)*m.Cols/width
			area := (r1 - r0) * (c1 - c0)
			if area <= 0 {
				area = 1
			}
			sb.WriteByte(densityGlyph(float64(counts[gr*width+gc]) / float64(area)))
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

func densityGlyph(d float64) byte {
	switch {
	case d <= 0:
		return ' '
	case d < 0.01:
		return '.'
	case d < 0.10:
		return ':'
	case d < 0.40:
		return '+'
	default:
		return '#'
	}
}
