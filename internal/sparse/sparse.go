// Package sparse provides the sparse-matrix substrate used throughout the
// Misam reproduction: coordinate (COO), compressed sparse row (CSR),
// compressed sparse column (CSC) and dense formats, conversions between
// them, and a family of random generators that produce the sparsity
// patterns the paper evaluates (uniform, power-law graphs, banded
// scientific matrices, block-structured matrices, and pruned DNN weights).
//
// All formats store float64 values and use int indices. CSR and CSC keep
// their index arrays sorted within each row/column, which the feature
// extractor and the accelerator simulator rely on.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Entry is a single nonzero element in coordinate format.
type Entry struct {
	Row, Col int
	Val      float64
}

// COO is a matrix in coordinate (triplet) format. Entries are kept in
// row-major order (by Row, then Col) once Normalize has been called.
type COO struct {
	Rows, Cols int
	Entries    []Entry
}

// NewCOO returns an empty COO matrix with the given dimensions.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Append adds a nonzero entry. It does not check for duplicates; call
// Normalize to sort and coalesce.
func (m *COO) Append(row, col int, val float64) {
	m.Entries = append(m.Entries, Entry{Row: row, Col: col, Val: val})
}

// NNZ reports the number of stored entries.
func (m *COO) NNZ() int { return len(m.Entries) }

// Density reports NNZ / (Rows*Cols), or 0 for an empty shape.
func (m *COO) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(len(m.Entries)) / (float64(m.Rows) * float64(m.Cols))
}

// Normalize sorts entries row-major and sums duplicates. Entries that sum
// to exactly zero are kept: explicit zeros are legal in sparse formats and
// the simulator treats them as scheduled work, matching real accelerators
// that do not re-inspect values.
func (m *COO) Normalize() {
	if len(m.Entries) == 0 {
		return
	}
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	out := m.Entries[:1]
	for _, e := range m.Entries[1:] {
		last := &out[len(out)-1]
		if e.Row == last.Row && e.Col == last.Col {
			last.Val += e.Val
		} else {
			out = append(out, e)
		}
	}
	m.Entries = out
}

// Validate checks structural invariants: indices in range and entries in
// strictly increasing row-major order (i.e. Normalize has run).
func (m *COO) Validate() error {
	for i, e := range m.Entries {
		if e.Row < 0 || e.Row >= m.Rows || e.Col < 0 || e.Col >= m.Cols {
			return fmt.Errorf("sparse: COO entry %d (%d,%d) out of range %dx%d", i, e.Row, e.Col, m.Rows, m.Cols)
		}
		if i > 0 {
			p := m.Entries[i-1]
			if e.Row < p.Row || (e.Row == p.Row && e.Col <= p.Col) {
				return fmt.Errorf("sparse: COO entries not strictly row-major at %d", i)
			}
		}
	}
	return nil
}

// CSR is a matrix in compressed sparse row format. RowPtr has length
// Rows+1; row r owns ColIdx[RowPtr[r]:RowPtr[r+1]] with matching Val.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Density reports NNZ / (Rows*Cols), or 0 for an empty shape.
func (m *CSR) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// RowNNZ reports the number of nonzeros in row r.
func (m *CSR) RowNNZ(r int) int { return m.RowPtr[r+1] - m.RowPtr[r] }

// Row returns the column indices and values of row r. The returned slices
// alias the matrix storage and must not be modified.
func (m *CSR) Row(r int) ([]int, []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the value at (r, c), using binary search within the row.
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	i := sort.SearchInts(cols, c)
	if i < len(cols) && cols[i] == c {
		return vals[i]
	}
	return 0
}

// Validate checks structural invariants: monotone RowPtr spanning the
// index arrays and strictly increasing, in-range column indices per row.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: CSR RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != len(m.ColIdx) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: CSR pointer bounds inconsistent")
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("sparse: CSR RowPtr decreases at row %d", r)
		}
		prev := -1
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			c := m.ColIdx[i]
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("sparse: CSR column %d out of range in row %d", c, r)
			}
			if c <= prev {
				return fmt.Errorf("sparse: CSR columns not strictly increasing in row %d", r)
			}
			prev = c
		}
	}
	return nil
}

// CSC is a matrix in compressed sparse column format. ColPtr has length
// Cols+1; column c owns RowIdx[ColPtr[c]:ColPtr[c+1]] with matching Val.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Val        []float64
}

// NNZ reports the number of stored entries.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// Density reports NNZ / (Rows*Cols), or 0 for an empty shape.
func (m *CSC) Density() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.Rows) * float64(m.Cols))
}

// ColNNZ reports the number of nonzeros in column c.
func (m *CSC) ColNNZ(c int) int { return m.ColPtr[c+1] - m.ColPtr[c] }

// Col returns the row indices and values of column c. The returned slices
// alias the matrix storage and must not be modified. On a pattern-only
// matrix (see CSR.ToCSCPattern) the value slice is nil.
func (m *CSC) Col(c int) ([]int, []float64) {
	lo, hi := m.ColPtr[c], m.ColPtr[c+1]
	if m.Val == nil {
		return m.RowIdx[lo:hi], nil
	}
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// Validate checks structural invariants, mirroring CSR.Validate.
func (m *CSC) Validate() error {
	if len(m.ColPtr) != m.Cols+1 {
		return fmt.Errorf("sparse: CSC ColPtr length %d, want %d", len(m.ColPtr), m.Cols+1)
	}
	if m.ColPtr[0] != 0 || m.ColPtr[m.Cols] != len(m.RowIdx) || len(m.RowIdx) != len(m.Val) {
		return fmt.Errorf("sparse: CSC pointer bounds inconsistent")
	}
	for c := 0; c < m.Cols; c++ {
		if m.ColPtr[c] > m.ColPtr[c+1] {
			return fmt.Errorf("sparse: CSC ColPtr decreases at column %d", c)
		}
		prev := -1
		for i := m.ColPtr[c]; i < m.ColPtr[c+1]; i++ {
			r := m.RowIdx[i]
			if r < 0 || r >= m.Rows {
				return fmt.Errorf("sparse: CSC row %d out of range in column %d", r, c)
			}
			if r <= prev {
				return fmt.Errorf("sparse: CSC rows not strictly increasing in column %d", c)
			}
			prev = r
		}
	}
	return nil
}

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed dense matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the value at (r, c).
func (m *Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add accumulates v into (r, c).
func (m *Dense) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// NNZ counts entries whose magnitude exceeds 0 exactly.
func (m *Dense) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// AlmostEqual reports whether two dense matrices agree elementwise within
// tol, using a relative-or-absolute comparison suitable for accumulated
// floating-point sums.
func (m *Dense) AlmostEqual(o *Dense, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		w := o.Data[i]
		diff := math.Abs(v - w)
		scale := math.Max(math.Abs(v), math.Abs(w))
		if diff > tol && diff > tol*scale {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference between
// two same-shaped dense matrices. It panics on shape mismatch.
func (m *Dense) MaxAbsDiff(o *Dense) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("sparse: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(v - o.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}
