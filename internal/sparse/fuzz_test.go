package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser: arbitrary input must either
// produce a structurally valid matrix or an error — never a panic or an
// invalid CSR.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 4.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1.0\n3 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("parser accepted input yielding invalid CSR: %v\ninput: %q", verr, input)
		}
		// A parsed matrix must survive a write/read round trip.
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("write failed on parsed matrix: %v", err)
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !EqualCSR(m, back) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

// FuzzNormalize hardens COO normalization against arbitrary entry soups.
func FuzzNormalize(f *testing.F) {
	f.Add(3, 3, []byte{0, 0, 1, 1, 2, 2})
	f.Add(1, 1, []byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, rows, cols int, coords []byte) {
		if rows < 1 || cols < 1 || rows > 50 || cols > 50 {
			return
		}
		m := NewCOO(rows, cols)
		for i := 0; i+1 < len(coords); i += 2 {
			m.Append(int(coords[i])%rows, int(coords[i+1])%cols, float64(coords[i])+1)
		}
		m.Normalize()
		if err := m.Validate(); err != nil {
			t.Fatalf("Normalize produced invalid COO: %v", err)
		}
		csr := m.ToCSR()
		if err := csr.Validate(); err != nil {
			t.Fatalf("ToCSR produced invalid CSR: %v", err)
		}
	})
}
