package sparse

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSpyDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DenseRandom(rng, 64, 64)
	out := Spy(m, 8, 4)
	if strings.Count(out, "#") != 32 {
		t.Errorf("dense spy should be all '#':\n%s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Errorf("expected 4 rows:\n%s", out)
	}
}

func TestSpyEmpty(t *testing.T) {
	m := NewCOO(64, 64).ToCSR()
	out := Spy(m, 8, 4)
	if strings.ContainsAny(out, ".:+#") {
		t.Errorf("empty matrix should render blank:\n%s", out)
	}
}

func TestSpyDiagonal(t *testing.T) {
	m := Identity(64)
	out := Spy(m, 8, 8)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	for i, line := range lines {
		// The diagonal cell (i,i) must be marked, off-band cells blank.
		cells := line[1 : len(line)-1]
		if cells[i] == ' ' {
			t.Errorf("diagonal cell (%d,%d) blank:\n%s", i, i, out)
		}
		for j := 0; j < len(cells); j++ {
			if j != i && cells[j] != ' ' {
				t.Errorf("off-diagonal cell (%d,%d) = %q:\n%s", i, j, cells[j], out)
			}
		}
	}
}

func TestSpyBandedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Banded(rng, 200, 200, 10, 0.9)
	out := Spy(m, 10, 10)
	// The band hugs the diagonal: corners must be empty.
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	topRight := lines[0][10] // last cell of first row (before '|')
	bottomLeft := lines[9][1]
	if topRight != ' ' || bottomLeft != ' ' {
		t.Errorf("banded spy corners not blank:\n%s", out)
	}
}

func TestSpyClampsGrid(t *testing.T) {
	m := Identity(2)
	out := Spy(m, 100, 100) // grid larger than the matrix
	if strings.Count(out, "\n") != 2 {
		t.Errorf("grid not clamped to matrix dims:\n%s", out)
	}
	// Degenerate arguments fall back to defaults.
	if Spy(m, -1, -1) == "" {
		t.Error("negative grid should use defaults")
	}
}

func TestDensityGlyphThresholds(t *testing.T) {
	cases := map[float64]byte{0: ' ', 0.005: '.', 0.05: ':', 0.2: '+', 0.9: '#'}
	for d, want := range cases {
		if got := densityGlyph(d); got != want {
			t.Errorf("glyph(%v) = %q, want %q", d, got, want)
		}
	}
}
