package sparse

import "math"

// Fingerprint is a 128-bit content hash of a matrix. Two matrices with
// identical dimensions, row pointers, column indices and values — however
// they were built — produce the same fingerprint; flipping any single
// dimension, index or value changes it (with overwhelming probability).
// The analysis cache (internal/memo) keys on pair fingerprints, so the
// hash must be fast on nnz-sized inputs and collision-resistant against
// the structured, low-entropy differences sparse matrices exhibit
// (off-by-one indices, single pruned weights); cryptographic strength is
// not a goal.
type Fingerprint struct {
	Hi, Lo uint64
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche permutation
// of a 64-bit word, so neighbouring integers (the common case for sparse
// indices) land in unrelated positions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash128 accumulates words into two chained lanes. Both lanes are
// order-sensitive (swapping two words changes the result) and seeded
// differently so the 128-bit state never degenerates to a repeated
// 64-bit value.
type hash128 struct {
	lo, hi uint64
}

func newHash128() hash128 {
	return hash128{lo: 0x9e3779b97f4a7c15, hi: 0xc2b2ae3d27d4eb4f}
}

func (h *hash128) word(x uint64) {
	h.lo = mix64(h.lo ^ x)
	h.hi = mix64(h.hi + x + 0x9e3779b97f4a7c15)
}

func (h *hash128) sum() Fingerprint {
	// A final cross-mix so the last word avalanches into both halves.
	return Fingerprint{Hi: mix64(h.hi ^ (h.lo >> 32)), Lo: mix64(h.lo ^ h.hi)}
}

// Fingerprint hashes the full matrix content: dimensions, then RowPtr,
// ColIdx and Val word by word. The sections need no explicit separators —
// RowPtr's length is fixed by Rows, and the index/value lengths by
// RowPtr's final entry — so the encoding is prefix-free. Cost is one pass
// over the stored structure, O(rows + nnz), far below a single design
// simulation.
func (m *CSR) Fingerprint() Fingerprint {
	h := newHash128()
	h.word(uint64(m.Rows))
	h.word(uint64(m.Cols))
	for _, p := range m.RowPtr {
		h.word(uint64(p))
	}
	for _, c := range m.ColIdx {
		h.word(uint64(c))
	}
	for _, v := range m.Val {
		h.word(math.Float64bits(v))
	}
	return h.sum()
}
