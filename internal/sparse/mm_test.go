package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := Uniform(rng, 30, 20, 0.15)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !EqualCSR(m, got) {
		t.Fatal("round trip lost data")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 2.0
2 1 5.0
3 3 1.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (mirrored off-diagonal)", m.NNZ())
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Error("symmetric entry not mirrored")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Error("pattern values should default to 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate real general\nnot a size line\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 y 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 z\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestMatrixMarketSkipsComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
2 2 1
% another
1 1 4.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if m.At(0, 0) != 4.5 {
		t.Errorf("At(0,0) = %v, want 4.5", m.At(0, 0))
	}
}
