package sparse

// Binary wire format for CSR matrices — the zero-copy ingestion path.
//
// A serving stack that answers in ~150 µs cannot afford to spend its
// budget parsing MatrixMarket text out of JSON strings: at fast-path
// speeds, decode IS the request. The wire format below is a
// length-prefixed little-endian image of the CSR struct itself, laid out
// so that on a little-endian 64-bit machine a decoder does not have to
// copy anything at all — the RowPtr/ColIdx/Val sections of a properly
// aligned request buffer ARE valid []int and []float64 backing arrays,
// and the decoder just points slice headers at them.
//
// Layout (all fixed-width fields little-endian, every section 8-aligned
// relative to the start of the blob):
//
//	offset 0   magic "MCSR"
//	offset 4   version byte (1)
//	offset 5   3 reserved bytes, must be zero
//	offset 8   rows  uint64
//	offset 16  cols  uint64
//	offset 24  nnz   uint64
//	offset 32  rowPtr  (rows+1) × int64
//	...        colIdx  nnz × int64
//	...        val     nnz × float64 (IEEE 754 bits)
//
// The total length is implied by rows and nnz, so blobs concatenate
// without extra framing, and — because every blob's length is a multiple
// of 8 — a sequence of blobs in one 8-aligned buffer keeps every section
// of every blob 8-aligned. ParseWire validates the full CSR invariants
// (monotone RowPtr spanning the arrays, strictly increasing in-range
// ColIdx per row) before anything downstream trusts the bytes: hostile
// input cannot smuggle a malformed matrix past the fingerprint into the
// cache or the simulator.
//
// Fingerprints are computed directly over the wire image
// (WireView.Fingerprint) and are bit-identical to CSR.Fingerprint() on
// the decoded struct, so a warm cache hit never needs to materialize the
// matrix at all.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// ErrWire marks a rejected binary matrix blob: bad framing, truncated or
// oversized sections, or CSR invariant violations. Every decode failure
// wraps it, so ingest boundaries can map the whole family to one client
// error (HTTP 400) with errors.Is.
var ErrWire = errors.New("sparse: malformed binary matrix")

// Wire header constants.
const (
	wireMagic       = "MCSR"
	wireVersion     = 1
	wireHeaderBytes = 32
)

// Wire caps: a blob may not claim more rows/columns/nonzeros than this,
// independent of any transport-level body cap. 2^31-1 keeps every index
// in int32 range so the decoded struct is valid on 32-bit builds too.
const (
	MaxWireDim = 1<<31 - 1
	MaxWireNNZ = 1<<31 - 1
)

// aliasable reports whether the running platform lets the decoder point
// []int / []float64 slice headers straight into a little-endian wire
// buffer: 64-bit ints and little-endian byte order. On other platforms
// every decode copies.
var aliasable = func() bool {
	if unsafe.Sizeof(int(0)) != 8 {
		return false
	}
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// EncodedSize reports the wire size of m in bytes.
func EncodedSize(m *CSR) int {
	return wireHeaderBytes + 8*(m.Rows+1+2*m.NNZ())
}

// AppendBinary appends the wire encoding of m to dst and returns the
// extended slice. It does not validate m; encode trusted matrices or run
// Validate first.
func AppendBinary(dst []byte, m *CSR) []byte {
	need := EncodedSize(m)
	off := len(dst)
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	p := dst[off:]
	copy(p[0:4], wireMagic)
	p[4] = wireVersion
	p[5], p[6], p[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(p[8:16], uint64(m.Rows))
	binary.LittleEndian.PutUint64(p[16:24], uint64(m.Cols))
	binary.LittleEndian.PutUint64(p[24:32], uint64(m.NNZ()))
	w := p[wireHeaderBytes:]
	for _, v := range m.RowPtr {
		binary.LittleEndian.PutUint64(w, uint64(v))
		w = w[8:]
	}
	for _, c := range m.ColIdx {
		binary.LittleEndian.PutUint64(w, uint64(c))
		w = w[8:]
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(w, math.Float64bits(v))
		w = w[8:]
	}
	return dst
}

// EncodeBinary returns the wire encoding of m in a fresh buffer.
func EncodeBinary(m *CSR) []byte {
	return AppendBinary(make([]byte, 0, EncodedSize(m)), m)
}

// WireView is a validated window onto one encoded matrix inside a wire
// buffer. The zero value is invalid; views come from ParseWire, which has
// already checked framing and the full CSR invariants, so every method is
// infallible. A view aliases the buffer it was parsed from and is only
// valid while that buffer is live and unmodified.
type WireView struct {
	buf        []byte // exactly one blob, header included
	rows, cols int
	nnz        int
}

// Rows, Cols and NNZ report the encoded dimensions.
func (w WireView) Rows() int { return w.rows }
func (w WireView) Cols() int { return w.cols }
func (w WireView) NNZ() int  { return w.nnz }

// EncodedLen reports the blob's length in bytes.
func (w WireView) EncodedLen() int { return len(w.buf) }

// Bytes returns the underlying blob (aliased, do not modify).
func (w WireView) Bytes() []byte { return w.buf }

// sections returns the three word sections of the blob.
func (w WireView) sections() (rowPtr, colIdx, val []byte) {
	p := w.buf[wireHeaderBytes:]
	rp := 8 * (w.rows + 1)
	ci := 8 * w.nnz
	return p[:rp], p[rp : rp+ci], p[rp+ci:]
}

// wireErr wraps a framing/validation failure in ErrWire.
func wireErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrWire, fmt.Sprintf(format, args...))
}

// ParseWire validates one wire blob at the front of buf and returns a
// view over it plus the remaining bytes (blobs concatenate, so callers
// pull a sequence of matrices out of one buffer). The full CSR
// invariants are checked here, once, straight off the wire words —
// monotone RowPtr spanning the arrays, strictly increasing in-range
// column indices per row — so Decode and Fingerprint never re-validate.
func ParseWire(buf []byte) (WireView, []byte, error) {
	if len(buf) < wireHeaderBytes {
		return WireView{}, nil, wireErr("truncated header: %d bytes, want at least %d", len(buf), wireHeaderBytes)
	}
	if string(buf[0:4]) != wireMagic {
		return WireView{}, nil, wireErr("bad magic %q", buf[0:4])
	}
	if buf[4] != wireVersion {
		return WireView{}, nil, wireErr("unsupported version %d (this build speaks version %d)", buf[4], wireVersion)
	}
	if buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
		return WireView{}, nil, wireErr("nonzero reserved header bytes")
	}
	rows := binary.LittleEndian.Uint64(buf[8:16])
	cols := binary.LittleEndian.Uint64(buf[16:24])
	nnz := binary.LittleEndian.Uint64(buf[24:32])
	if rows > MaxWireDim || cols > MaxWireDim {
		return WireView{}, nil, wireErr("dimensions %dx%d exceed the %d cap", rows, cols, uint64(MaxWireDim))
	}
	if nnz > MaxWireNNZ {
		return WireView{}, nil, wireErr("nnz %d exceeds the %d cap", nnz, uint64(MaxWireNNZ))
	}
	if rows > 0 && cols > 0 && nnz > rows*cols {
		return WireView{}, nil, wireErr("nnz %d exceeds %dx%d capacity", nnz, rows, cols)
	}
	if (rows == 0 || cols == 0) && nnz != 0 {
		return WireView{}, nil, wireErr("%d nonzeros in an empty %dx%d shape", nnz, rows, cols)
	}
	// uint64 arithmetic cannot overflow here: rows, nnz < 2^31.
	need := uint64(wireHeaderBytes) + 8*(rows+1+2*nnz)
	if uint64(len(buf)) < need {
		return WireView{}, nil, wireErr("truncated body: %d bytes, header declares %d", len(buf), need)
	}
	v := WireView{buf: buf[:need], rows: int(rows), cols: int(cols), nnz: int(nnz)}
	rp, ci, _ := v.sections()

	// RowPtr: starts at 0, never decreases, ends exactly at nnz.
	if got := binary.LittleEndian.Uint64(rp[:8]); got != 0 {
		return WireView{}, nil, wireErr("RowPtr[0] = %d, want 0", got)
	}
	prev := uint64(0)
	for off := 8; off < len(rp); off += 8 {
		p := binary.LittleEndian.Uint64(rp[off:])
		if p < prev || p > nnz {
			return WireView{}, nil, wireErr("RowPtr not monotone in [0, nnz] at row %d", off/8)
		}
		prev = p
	}
	if prev != nnz {
		return WireView{}, nil, wireErr("RowPtr[rows] = %d, want nnz %d", prev, nnz)
	}
	// ColIdx: strictly increasing within each row, all in [0, cols).
	lo := uint64(0)
	for r := 0; r < int(rows); r++ {
		hi := binary.LittleEndian.Uint64(rp[8*(r+1):])
		prevCol := uint64(math.MaxUint64)
		for i := lo; i < hi; i++ {
			c := binary.LittleEndian.Uint64(ci[8*i:])
			if c >= cols {
				return WireView{}, nil, wireErr("column %d out of range in row %d", c, r)
			}
			if prevCol != math.MaxUint64 && c <= prevCol {
				return WireView{}, nil, wireErr("columns not strictly increasing in row %d", r)
			}
			prevCol = c
		}
		lo = hi
	}
	return v, buf[need:], nil
}

// Fingerprint hashes the matrix content straight off the wire words,
// without materializing a CSR. The word sequence — Rows, Cols, RowPtr,
// ColIdx, Val bits — is exactly what CSR.Fingerprint hashes, so the
// results are identical: the analysis cache can be probed from the raw
// request bytes, and a warm hit never decodes.
func (w WireView) Fingerprint() Fingerprint {
	h := newHash128()
	h.word(uint64(w.rows))
	h.word(uint64(w.cols))
	body := w.buf[wireHeaderBytes:]
	for off := 0; off < len(body); off += 8 {
		h.word(binary.LittleEndian.Uint64(body[off:]))
	}
	return h.sum()
}

// aligned reports whether the blob's word sections can be aliased
// directly (the buffer start is 8-aligned; every section offset is a
// multiple of 8, so one check covers all three).
func (w WireView) aligned() bool {
	if !aliasable {
		return false
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(w.buf)))%8 == 0
}

// aliasInts reinterprets an 8-aligned little-endian word section as
// []int without copying.
func aliasInts(b []byte, n int) []int {
	if n == 0 {
		return []int{}
	}
	return unsafe.Slice((*int)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// aliasFloats is aliasInts for the value section.
func aliasFloats(b []byte, n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}

// growInts returns s resized to n, reusing capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// DecodeInto materializes the view into dst, reusing dst's capacity, and
// returns dst. On an aligned little-endian buffer the slice headers alias
// the wire bytes and nothing is copied or allocated — the steady-state
// serving path is 0 allocs/op (pinned by TestDecodeBinarySteadyStateZeroAllocs).
// Misaligned or foreign-endian buffers are copied once into dst's arrays,
// which act as the caller's pooled arena. Either way the result is only
// valid while the wire buffer (alias mode) or dst (copy mode) is live.
func (w WireView) DecodeInto(dst *CSR) *CSR {
	dst.Rows, dst.Cols = w.rows, w.cols
	rp, ci, va := w.sections()
	if w.aligned() {
		dst.RowPtr = aliasInts(rp, w.rows+1)
		dst.ColIdx = aliasInts(ci, w.nnz)
		dst.Val = aliasFloats(va, w.nnz)
		return dst
	}
	dst.RowPtr = growInts(dst.RowPtr, w.rows+1)
	dst.ColIdx = growInts(dst.ColIdx, w.nnz)
	dst.Val = growFloats(dst.Val, w.nnz)
	copyWireInts(dst.RowPtr, rp)
	copyWireInts(dst.ColIdx, ci)
	for i := range dst.Val {
		dst.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(va[8*i:]))
	}
	return dst
}

func copyWireInts(dst []int, src []byte) {
	for i := range dst {
		dst[i] = int(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// Decode materializes the view into a fresh CSR struct (aliasing the
// wire buffer where alignment allows, see DecodeInto).
func (w WireView) Decode() *CSR {
	return w.DecodeInto(new(CSR))
}

// DecodeCopy materializes the view into freshly allocated arrays that
// share nothing with the wire buffer — for results that outlive the
// request (background verification jobs, caches of decoded matrices).
func (w WireView) DecodeCopy() *CSR {
	m := &CSR{
		Rows:   w.rows,
		Cols:   w.cols,
		RowPtr: make([]int, w.rows+1),
		ColIdx: make([]int, w.nnz),
		Val:    make([]float64, w.nnz),
	}
	rp, ci, va := w.sections()
	copyWireInts(m.RowPtr, rp)
	copyWireInts(m.ColIdx, ci)
	for i := range m.Val {
		m.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(va[8*i:]))
	}
	return m
}

// DecodeBinary validates and materializes exactly one wire blob
// (trailing bytes are an error). The returned CSR aliases buf where
// alignment allows; use WireView.DecodeCopy for an independent copy.
func DecodeBinary(buf []byte) (*CSR, error) {
	v, rest, err := ParseWire(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, wireErr("%d trailing bytes after the encoded matrix", len(rest))
	}
	return v.Decode(), nil
}

// DecodeBinaryInto is DecodeBinary decoding into dst (see
// WireView.DecodeInto for the alias/copy and lifetime rules).
func DecodeBinaryInto(dst *CSR, buf []byte) (*CSR, error) {
	v, rest, err := ParseWire(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, wireErr("%d trailing bytes after the encoded matrix", len(rest))
	}
	return v.DecodeInto(dst), nil
}
