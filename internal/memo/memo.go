// Package memo is a content-addressed cache over the expensive
// design-independent analysis artifacts of one A×B operand pair: the
// extracted feature vector, the four design simulation results, and the
// baseline workload statistics. Misam's deployment scenarios are
// dominated by repeated operands — a pruned weight matrix multiplies a
// stream of activations, and the reconfiguration engine re-prices the
// same pair family across a workload stream — so cross-request
// memoization turns the serving hot path into a fingerprint + lookup.
//
// Three properties drive the design:
//
//   - Content addressing: entries are keyed by a 128-bit fingerprint of
//     the operand contents (sparse.CSR.Fingerprint), so equal matrices
//     hit regardless of which request built them.
//   - Singleflight coalescing: N concurrent requests for the same key run
//     one analysis; the rest wait and share the result. An aborted leader
//     hands leadership to a surviving waiter instead of poisoning the
//     cache — partial results are never stored.
//   - Byte-budgeted LRU: eviction is by measured entry bytes, sharded to
//     keep lock hold times short under concurrent serving load.
//
// What is deliberately NOT cached: the reconfiguration Decision. It
// depends on the mutable per-accelerator bitstream state, so it must be
// re-priced per request (reconfig.Engine.Decide stays pure and cheap —
// two regression-tree lookups).
package memo

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"unsafe"

	"misam/internal/baseline"
	"misam/internal/features"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// Key is a 128-bit content address for one operand pair (plus any
// flavour salt the caller mixes in, e.g. pruned-vs-full feature
// extraction).
type Key struct {
	Hi, Lo uint64
}

// Bytes renders the key as 16 little-endian bytes (Lo then Hi) — the
// stable wire form cluster routing hashes to pick an owner node. Two
// keys are equal iff their byte images are equal, so any node hashing
// the same operand pair lands on the same ring point.
func (k Key) Bytes() [16]byte {
	var out [16]byte
	binary.LittleEndian.PutUint64(out[:8], k.Lo)
	binary.LittleEndian.PutUint64(out[8:], k.Hi)
	return out
}

// PairKey combines the two operand fingerprints into a cache key. The
// combination is order-sensitive (A×B and B×A address different
// entries) and re-mixed so that structured fingerprint pairs cannot
// cancel.
func PairKey(a, b sparse.Fingerprint) Key {
	lo := mix(a.Lo ^ mix(b.Hi+0x9e3779b97f4a7c15))
	hi := mix(a.Hi + mix(b.Lo^0xc2b2ae3d27d4eb4f))
	return Key{Hi: hi ^ (lo >> 32), Lo: lo}
}

// mix is the splitmix64 finalizer (see sparse.Fingerprint).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Analysis holds every design-independent artifact one Analyze (or
// stream-tile, or labelling) pass derives from an operand pair. All
// fields are immutable once published to the cache; the struct contains
// no slices or pointers, so sharing it across requests is safe without
// copying.
type Analysis struct {
	// Features is the §3.1 feature vector, in the extraction flavour the
	// entry's builder used (full or pruned — the key salt keeps the two
	// flavours apart).
	Features features.Vector
	// Results are the cycle-level outcomes of all four designs, so any
	// per-request Decision target finds its simulation ready.
	Results [sim.NumDesigns]sim.Result
	// Baseline are the CPU/GPU/Trapezoid cost-model inputs.
	Baseline baseline.Stats
}

// entryOverheadBytes approximates the per-entry bookkeeping the resident
// accounting charges on top of the payload: map bucket share, list
// element, entry header.
const entryOverheadBytes = 128

// analysisBytes is the measured payload size of one cached Analysis. The
// struct is slice-free, so unsafe.Sizeof covers it exactly.
var analysisBytes = int64(unsafe.Sizeof(Analysis{})) + entryOverheadBytes

// FastEntry is the fast-path cache payload: the extracted feature vector
// plus the baseline cost-model inputs. The confidence-gated tier skips
// the four simulations, and with the baseline stats cached alongside the
// features, a warm hit on a binary-ingested request can price the
// CPU/GPU/Trapezoid comparisons without ever materializing the operands —
// the zero-copy warm path decodes nothing. The struct is slice-free, so
// sharing it across requests is safe without copying.
type FastEntry struct {
	Features features.Vector
	Baseline baseline.Stats
}

// fastBytes is the payload size of one fast-path entry.
var fastBytes = int64(unsafe.Sizeof(FastEntry{})) + entryOverheadBytes

// EntryBytes reports the bytes one cached full-analysis entry charges
// against the budget (payload plus bookkeeping overhead).
func EntryBytes() int64 { return analysisBytes }

// FastEntryBytes is EntryBytes for a fast entry.
func FastEntryBytes() int64 { return fastBytes }

// fastSaltHi/Lo separate the fast-entry keyspace from full analyses: the
// same operand pair (same PairKey plus whatever flavour salt the caller
// mixed in) addresses distinct full and fast slots, so a fast hit can
// never masquerade as a full Analysis or vice versa.
const (
	fastSaltHi = 0xf157a7e5f157a7e5
	fastSaltLo = 0x5eedfacecafe1234
)

func fastKey(key Key) Key {
	return Key{Hi: key.Hi ^ fastSaltHi, Lo: mix(key.Lo ^ fastSaltLo)}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that ran the builder (singleflight leaders).
	Misses int64 `json:"misses"`
	// Coalesced counts waiters that shared a leader's in-flight build
	// instead of running their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped by the byte-budget LRU.
	Evictions int64 `json:"evictions"`
	// AbortedLeaders counts builds that ended in cancellation and were
	// discarded (never stored).
	AbortedLeaders int64 `json:"aborted_leaders"`
	// FastHits/FastMisses count the features-only fast-entry lookups
	// (DoFast); Hits/Misses above count only full-analysis traffic.
	FastHits   int64 `json:"fast_hits"`
	FastMisses int64 `json:"fast_misses"`
	// Entries and ResidentBytes describe the current working set;
	// BudgetBytes is the configured ceiling.
	Entries       int64 `json:"entries"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// numShards spreads keys across independently locked LRU segments. 16 is
// plenty for the fleet sizes the server runs: the critical section is a
// map probe and two list-pointer swaps.
const numShards = 16

// flight is one in-progress build. done is closed exactly once, after
// val/err are set. val is *Analysis for full entries and FastEntry for
// fast entries; the two keyspaces never mix (fastKey salt), so each
// caller knows which kind it is waiting for.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

type entry struct {
	key   Key
	val   any
	bytes int64
}

// shard is one LRU segment: resident entries in recency order plus the
// in-flight builds for keys that hash here.
type shard struct {
	mu      sync.Mutex
	items   map[Key]*list.Element // value: *entry
	lru     list.List             // front = most recent
	bytes   int64
	flights map[Key]*flight
}

// Cache is the sharded, byte-budgeted, singleflight-coalescing analysis
// cache. All methods are safe for concurrent use.
type Cache struct {
	shards         [numShards]shard
	budgetPerShard int64
	budget         int64

	hits       atomic.Int64
	misses     atomic.Int64
	fastHits   atomic.Int64
	fastMisses atomic.Int64
	coalesced  atomic.Int64
	evictions  atomic.Int64
	aborted    atomic.Int64
	resident   atomic.Int64
	entries    atomic.Int64
}

// New returns a cache bounded to roughly budgetBytes of resident
// analysis entries. The budget is split evenly across shards; a budget
// too small to hold a single entry per shard still admits one entry at a
// time (insert-then-evict keeps the newest).
func New(budgetBytes int64) *Cache {
	if budgetBytes < analysisBytes {
		budgetBytes = analysisBytes
	}
	per := budgetBytes / numShards
	if per < analysisBytes {
		per = analysisBytes
	}
	c := &Cache{budgetPerShard: per, budget: budgetBytes}
	for i := range c.shards {
		c.shards[i].items = make(map[Key]*list.Element)
		c.shards[i].flights = make(map[Key]*flight)
	}
	return c
}

func (c *Cache) shard(key Key) *shard {
	return &c.shards[key.Lo%numShards]
}

// Get returns the resident full-analysis entry for key, if any, marking
// it most recently used. It never blocks on in-flight builds.
func (c *Cache) Get(key Key) (*Analysis, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.items[key]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*entry).val.(*Analysis), true
}

// Do returns the analysis for key, computing it with build on a miss.
// Concurrent calls for the same key coalesce onto one builder; the rest
// wait and share its result. hit reports whether the caller avoided
// running build itself (resident entry or coalesced share).
//
// Cancellation safety: build runs under the leader's ctx. If the leader
// is cancelled, nothing is stored and the flight fails with the
// cancellation error — but waiters whose own contexts are still live do
// not inherit the failure. They re-enter the loop, and one of them
// becomes the new leader (the hand-off the serving path relies on: a
// disconnecting client must not fail the requests queued behind it).
func (c *Cache) Do(ctx context.Context, key Key, build func(ctx context.Context) (*Analysis, error)) (an *Analysis, hit bool, err error) {
	val, hit, err := c.do(ctx, key, analysisBytes, &c.hits, &c.misses, func(ctx context.Context) (any, error) {
		an, err := build(ctx)
		if err == nil && an == nil {
			return nil, errors.New("memo: builder returned nil analysis")
		}
		return an, err
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*Analysis), hit, nil
}

// DoFast is Do for the confidence-gated tier: it caches the extracted
// feature vector and baseline stats (the fast path's expensive
// design-independent artifacts), keyed in a salted keyspace disjoint from
// full analyses so the two entry kinds share the byte budget and LRU but
// never alias. Same singleflight and cancellation semantics as Do.
func (c *Cache) DoFast(ctx context.Context, key Key, build func(ctx context.Context) (FastEntry, error)) (e FastEntry, hit bool, err error) {
	val, hit, err := c.do(ctx, fastKey(key), fastBytes, &c.fastHits, &c.fastMisses, func(ctx context.Context) (any, error) {
		e, err := build(ctx)
		if err != nil {
			return nil, err
		}
		return e, nil
	})
	if err != nil {
		return FastEntry{}, false, err
	}
	return val.(FastEntry), hit, nil
}

// GetFast probes the fast-entry keyspace without blocking on in-flight
// builds and without running a builder. The zero-copy warm path uses it
// straight off a wire fingerprint: on a hit the request is served from
// the entry alone and the operand bytes are never decoded. A hit marks
// the entry most recently used and counts as a fast hit; a miss counts
// nothing (the caller proceeds to DoFast, which books the miss).
func (c *Cache) GetFast(key Key) (FastEntry, bool) {
	fk := fastKey(key)
	sh := c.shard(fk)
	sh.mu.Lock()
	el, ok := sh.items[fk]
	if ok {
		sh.lru.MoveToFront(el)
	}
	sh.mu.Unlock()
	if !ok {
		return FastEntry{}, false
	}
	c.fastHits.Add(1)
	return el.Value.(*entry).val.(FastEntry), true
}

// do is the shared lookup/singleflight/insert core behind Do and DoFast.
// bytes is what a stored entry charges against the budget; hits/misses
// are the per-kind counters to bump.
func (c *Cache) do(ctx context.Context, key Key, bytes int64, hits, misses *atomic.Int64, build func(ctx context.Context) (any, error)) (val any, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		sh := c.shard(key)
		sh.mu.Lock()
		if el, ok := sh.items[key]; ok {
			sh.lru.MoveToFront(el)
			sh.mu.Unlock()
			hits.Add(1)
			return el.Value.(*entry).val, true, nil
		}
		if f, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.val, true, nil
			}
			if isCancellation(f.err) {
				// Leader aborted: retry, possibly becoming the new leader.
				continue
			}
			// A real build failure is shared — every waiter would have
			// failed the same way.
			return nil, false, f.err
		}
		// Become the leader.
		f := &flight{done: make(chan struct{})}
		sh.flights[key] = f
		sh.mu.Unlock()
		misses.Add(1)

		val, err := build(ctx)

		sh.mu.Lock()
		delete(sh.flights, key)
		if err == nil {
			c.insertLocked(sh, key, val, bytes)
		}
		sh.mu.Unlock()
		if err != nil && isCancellation(err) {
			c.aborted.Add(1)
		}

		f.val, f.err = val, err
		close(f.done)
		return val, false, err
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// insertLocked adds (or refreshes) an entry and evicts from the LRU tail
// until the shard is back under budget. The just-inserted entry is never
// evicted: with a degenerate budget the cache degrades to
// hold-the-latest, not hold-nothing.
func (c *Cache) insertLocked(sh *shard, key Key, val any, bytes int64) {
	if el, ok := sh.items[key]; ok {
		// A racing leader on the same key already stored — refresh
		// recency, keep the resident value (the builds are deterministic).
		sh.lru.MoveToFront(el)
		return
	}
	e := &entry{key: key, val: val, bytes: bytes}
	sh.items[key] = sh.lru.PushFront(e)
	sh.bytes += e.bytes
	c.resident.Add(e.bytes)
	c.entries.Add(1)
	for sh.bytes > c.budgetPerShard && sh.lru.Len() > 1 {
		tail := sh.lru.Back()
		old := tail.Value.(*entry)
		sh.lru.Remove(tail)
		delete(sh.items, old.key)
		sh.bytes -= old.bytes
		c.resident.Add(-old.bytes)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
}

// Stats snapshots the counters. Counters are read individually and may
// be mutually inconsistent by a few in-flight operations — fine for
// monitoring, not a linearizable view.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Coalesced:      c.coalesced.Load(),
		Evictions:      c.evictions.Load(),
		AbortedLeaders: c.aborted.Load(),
		FastHits:       c.fastHits.Load(),
		FastMisses:     c.fastMisses.Load(),
		Entries:        c.entries.Load(),
		ResidentBytes:  c.resident.Load(),
		BudgetBytes:    c.budget,
	}
}
