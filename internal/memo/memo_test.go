package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"misam/internal/features"
)

// shardKey builds a key that lands in shard 0, with i distinguishing
// entries — the eviction-order tests need all entries in one LRU.
func shardKey(i int) Key {
	return Key{Hi: uint64(i), Lo: uint64(i) * numShards}
}

func dummyAnalysis(tag float64) *Analysis {
	an := &Analysis{}
	an.Features[0] = tag
	return an
}

func mustDo(t *testing.T, c *Cache, key Key, tag float64) (*Analysis, bool) {
	t.Helper()
	an, hit, err := c.Do(context.Background(), key, func(context.Context) (*Analysis, error) {
		return dummyAnalysis(tag), nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	return an, hit
}

func TestDoMissThenHit(t *testing.T) {
	c := New(1 << 20)
	an, hit := mustDo(t, c, shardKey(1), 41)
	if hit {
		t.Fatal("first Do reported a hit")
	}
	an2, hit := mustDo(t, c, shardKey(1), 99)
	if !hit {
		t.Fatal("second Do missed")
	}
	if an2 != an || an2.Features[0] != 41 {
		t.Fatal("hit did not return the stored entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.ResidentBytes != EntryBytes() {
		t.Fatalf("resident bytes %d, want %d", st.ResidentBytes, EntryBytes())
	}
}

func TestSingleflightCoalescing(t *testing.T) {
	// K concurrent identical requests must run exactly one build. Run
	// under -race (ci.sh does) — the waiters all read the shared result.
	c := New(1 << 20)
	const K = 32
	var builds atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*Analysis, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.Do(context.Background(), shardKey(7), func(context.Context) (*Analysis, error) {
				builds.Add(1)
				<-release // hold the flight open until all K have arrived or queued
				return dummyAnalysis(7), nil
			})
		}(i)
	}
	// Wait for the leader to be in the builder, then let everyone pile up.
	for builds.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for %d concurrent requests, want 1", n, K)
	}
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Features[0] != 7 {
			t.Fatalf("request %d got wrong result", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced+st.Hits != K-1 {
		t.Fatalf("coalesced (%d) + hits (%d) != %d", st.Coalesced, st.Hits, K-1)
	}
}

func TestLRUEvictionOrderByBytes(t *testing.T) {
	// Budget for exactly 3 entries in shard 0. numShards shards share the
	// total budget evenly, so scale it up.
	c := New(3 * EntryBytes() * numShards)

	mustDo(t, c, shardKey(1), 1)
	mustDo(t, c, shardKey(2), 2)
	mustDo(t, c, shardKey(3), 3)
	// Touch 1 so 2 becomes least-recently used.
	if _, hit := c.Get(shardKey(1)); !hit {
		t.Fatal("entry 1 missing before eviction")
	}
	// Inserting 4 must evict 2, not 1 or 3.
	mustDo(t, c, shardKey(4), 4)

	if _, hit := c.Get(shardKey(2)); hit {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []int{1, 3, 4} {
		if _, hit := c.Get(shardKey(i)); !hit {
			t.Fatalf("entry %d was evicted out of LRU order", i)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes > c.budgetPerShard*numShards {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, c.budget)
	}
}

func TestTinyBudgetKeepsNewest(t *testing.T) {
	// A budget below one entry degrades to hold-the-latest.
	c := New(1)
	mustDo(t, c, shardKey(1), 1)
	mustDo(t, c, shardKey(2), 2)
	if _, hit := c.Get(shardKey(1)); hit {
		t.Fatal("old entry survived a one-entry budget")
	}
	if _, hit := c.Get(shardKey(2)); !hit {
		t.Fatal("newest entry was not retained")
	}
}

func TestCancelledLeaderDoesNotPoisonCache(t *testing.T) {
	c := New(1 << 20)
	key := shardKey(9)
	var builds atomic.Int64

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inBuild := make(chan struct{})

	// Leader: blocks in the builder until cancelled.
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, key, func(ctx context.Context) (*Analysis, error) {
			builds.Add(1)
			close(inBuild)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		leaderErr <- err
	}()
	<-inBuild

	// Waiter with a live context: must survive the leader's abort by
	// taking over the flight and completing the build itself.
	waiterDone := make(chan struct{})
	var waiterAn *Analysis
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterAn, _, waiterErr = c.Do(context.Background(), key, func(context.Context) (*Analysis, error) {
			builds.Add(1)
			return dummyAnalysis(9), nil
		})
	}()
	// Give the waiter time to park on the leader's flight, then abort the
	// leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	<-waiterDone
	if waiterErr != nil {
		t.Fatalf("waiter failed after leader abort: %v", waiterErr)
	}
	if waiterAn == nil || waiterAn.Features[0] != 9 {
		t.Fatal("waiter got wrong analysis after hand-off")
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("%d builds, want 2 (aborted leader + hand-off)", n)
	}
	// The aborted partial build must not be resident; the hand-off's
	// completed build must be.
	an, hit := c.Get(key)
	if !hit || an.Features[0] != 9 {
		t.Fatal("cache does not hold the hand-off build")
	}
	st := c.Stats()
	if st.AbortedLeaders != 1 {
		t.Fatalf("aborted leaders = %d, want 1", st.AbortedLeaders)
	}
}

func TestCancelledWaiterReturnsOwnError(t *testing.T) {
	c := New(1 << 20)
	key := shardKey(11)
	inBuild := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key, func(context.Context) (*Analysis, error) {
			close(inBuild)
			<-release
			return dummyAnalysis(1), nil
		})
	}()
	<-inBuild
	waiterCtx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(waiterCtx, key, func(context.Context) (*Analysis, error) {
		t.Error("cancelled waiter ran the builder")
		return nil, nil
	})
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
}

func TestBuildErrorIsSharedNotCached(t *testing.T) {
	c := New(1 << 20)
	key := shardKey(13)
	boom := fmt.Errorf("synthetic failure")
	_, _, err := c.Do(context.Background(), key, func(context.Context) (*Analysis, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the build error", err)
	}
	if _, hit := c.Get(key); hit {
		t.Fatal("failed build was cached")
	}
	// A later request retries.
	if _, hit := mustDo(t, c, key, 13); hit {
		t.Fatal("retry after failure reported a hit")
	}
}

func TestDoConcurrentDistinctKeys(t *testing.T) {
	// Hammer distinct and overlapping keys under -race.
	c := New(8 * EntryBytes() * numShards)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := shardKey(i % 24)
				an, _, err := c.Do(context.Background(), k, func(context.Context) (*Analysis, error) {
					return dummyAnalysis(float64(i % 24)), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if an.Features[0] != float64(i%24) {
					t.Errorf("key %d returned tag %v", i%24, an.Features[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkMemoHit(b *testing.B) {
	c := New(1 << 20)
	key := shardKey(1)
	mustDoB(b, c, key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit := c.Get(key); !hit {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMemoDoCoalesced(b *testing.B) {
	c := New(1 << 20)
	key := shardKey(2)
	mustDoB(b, c, key)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := c.Do(context.Background(), key, func(context.Context) (*Analysis, error) {
				return dummyAnalysis(0), nil
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func mustDoB(b *testing.B, c *Cache, key Key) {
	b.Helper()
	if _, _, err := c.Do(context.Background(), key, func(context.Context) (*Analysis, error) {
		return dummyAnalysis(0), nil
	}); err != nil {
		b.Fatal(err)
	}
}

// TestDoFastSeparateKeyspace: fast (features-only) and full entries for
// the SAME key must occupy distinct slots, bump distinct counters, and
// charge their own sizes against a shared budget.
func TestDoFastSeparateKeyspace(t *testing.T) {
	c := New(1 << 20)
	key := shardKey(1)

	var e FastEntry
	e.Features[0] = 7
	e.Baseline.Flops = 11
	got, hit, err := c.DoFast(context.Background(), key, func(context.Context) (FastEntry, error) {
		return e, nil
	})
	if err != nil || hit || got != e {
		t.Fatalf("first DoFast = (%v, %v, %v), want miss returning stored entry", got.Features[0], hit, err)
	}
	got, hit, err = c.DoFast(context.Background(), key, func(context.Context) (FastEntry, error) {
		t.Fatal("fast hit ran the builder")
		return FastEntry{}, nil
	})
	if err != nil || !hit || got != e {
		t.Fatalf("second DoFast = (%v, %v, %v), want hit", got.Features[0], hit, err)
	}

	// GetFast probes the same slot without a builder; a probe on a cold
	// key is a clean miss that counts nothing.
	if ge, ok := c.GetFast(key); !ok || ge != e {
		t.Fatalf("GetFast(warm key) = (%v, %v), want the stored entry", ge.Features[0], ok)
	}
	if _, ok := c.GetFast(shardKey(99)); ok {
		t.Fatal("GetFast(cold key) reported a hit")
	}

	// A full Do on the same key must not see the fast entry.
	if _, ok := c.Get(key); ok {
		t.Fatal("Get(key) returned the fast entry as a full analysis")
	}
	an, hit := mustDo(t, c, key, 41)
	if hit || an.Features[0] != 41 {
		t.Fatal("full Do on a fast-cached key did not run its own build")
	}

	st := c.Stats()
	// 1 DoFast hit + 1 warm GetFast probe; the cold probe counts nothing.
	if st.FastHits != 2 || st.FastMisses != 1 {
		t.Fatalf("fast counters = %d hits / %d misses, want 2/1", st.FastHits, st.FastMisses)
	}
	if st.Misses != 1 {
		t.Fatalf("full misses = %d, want 1 (fast traffic leaked into full counters)", st.Misses)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one fast, one full)", st.Entries)
	}
	if want := EntryBytes() + FastEntryBytes(); st.ResidentBytes != want {
		t.Fatalf("resident bytes %d, want %d", st.ResidentBytes, want)
	}
	if FastEntryBytes() >= EntryBytes() {
		t.Fatalf("fast entry (%d B) should be cheaper than a full analysis (%d B)",
			FastEntryBytes(), EntryBytes())
	}
}

// TestDoFastSingleflight: concurrent fast lookups for one key coalesce
// onto a single feature extraction.
func TestDoFastSingleflight(t *testing.T) {
	c := New(1 << 20)
	key := shardKey(3)
	var builds atomic.Int64
	release := make(chan struct{})
	const K = 8
	var wg sync.WaitGroup
	results := make([]features.Vector, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := c.DoFast(context.Background(), key, func(context.Context) (FastEntry, error) {
				builds.Add(1)
				<-release
				var e FastEntry
				e.Features[0] = 123
				return e, nil
			})
			if err != nil {
				t.Errorf("DoFast: %v", err)
			}
			results[i] = got.Features
		}(i)
	}
	// Let the goroutines pile up behind one leader, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds ran, want 1", n)
	}
	for i, v := range results {
		if v[0] != 123 {
			t.Fatalf("waiter %d got %v, want the shared result", i, v[0])
		}
	}
}

// TestDoFastBuildError: extraction failures propagate and are not cached.
func TestDoFastBuildError(t *testing.T) {
	c := New(1 << 20)
	key := shardKey(5)
	boom := errors.New("boom")
	_, _, err := c.DoFast(context.Background(), key, func(context.Context) (FastEntry, error) {
		return FastEntry{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call runs a fresh build.
	got, hit, err := c.DoFast(context.Background(), key, func(context.Context) (FastEntry, error) {
		var e FastEntry
		e.Features[0] = 9
		return e, nil
	})
	if err != nil || hit || got.Features[0] != 9 {
		t.Fatalf("retry after error = (%v, %v, %v), want fresh miss", got.Features[0], hit, err)
	}
}
