package fpga

import (
	"testing"

	"misam/internal/reconfig"
	"misam/internal/sim"
)

func newTestDevice(limit float64) *Device {
	return NewDevice(limit, reconfig.DefaultTimeModel())
}

func TestPlaceAndEvict(t *testing.T) {
	d := newTestDevice(100)
	slot, prog, err := d.Place(sim.Design4)
	if err != nil {
		t.Fatal(err)
	}
	if prog <= 0 {
		t.Error("placement should cost partial-reconfiguration time")
	}
	if len(d.Instances()) != 1 {
		t.Fatal("instance not recorded")
	}
	if err := d.Evict(slot); err != nil {
		t.Fatal(err)
	}
	if len(d.Instances()) != 0 {
		t.Fatal("instance not evicted")
	}
	if err := d.Evict(slot); err == nil {
		t.Error("double eviction accepted")
	}
}

func TestPlacementRespectsFabricLimits(t *testing.T) {
	d := newTestDevice(100)
	// §6.2: two Design 2 instances fit, a third does not (BRAM 48.02×3).
	for i := 0; i < 2; i++ {
		if _, _, err := d.Place(sim.Design2); err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
	}
	if _, _, err := d.Place(sim.Design2); err == nil {
		t.Fatal("third Design 2 instance should not fit")
	}
	// But a Design 4 still does not fit either (LUT 43.03×2 + 30.53 > 100).
	if d.Fits(sim.Design4) {
		util := d.Utilization()
		if util.LUT+sim.DesignResources(sim.Design4).LUT > 100 {
			t.Error("Fits contradicts the utilization arithmetic")
		}
	}
}

func TestUtilizationAccumulates(t *testing.T) {
	d := newTestDevice(100)
	if _, _, err := d.Place(sim.Design1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Place(sim.Design4); err != nil {
		t.Fatal(err)
	}
	util := d.Utilization()
	want := sim.DesignResources(sim.Design1).BRAM + sim.DesignResources(sim.Design4).BRAM
	if util.BRAM != want {
		t.Errorf("BRAM utilization %v, want %v", util.BRAM, want)
	}
}

func TestRunJobsMultiTenantBeatsSerial(t *testing.T) {
	d := newTestDevice(100)
	// Two independent job streams needing different designs: serially
	// they pay a full reconfiguration per design change; co-located they
	// run concurrently after two placements.
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{Name: jn("d2", i), Design: sim.Design2, Duration: 0.5})
		jobs = append(jobs, Job{Name: jn("d4", i), Design: sim.Design4, Duration: 0.5})
	}
	rep, err := RunJobs(d, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan >= rep.SerialSeconds {
		t.Errorf("multi-tenant makespan %.2fs not below serial %.2fs", rep.Makespan, rep.SerialSeconds)
	}
	if rep.Placements < 2 {
		t.Errorf("expected at least one instance per design, got %d placements", rep.Placements)
	}
	if len(rep.PerJobFinish) != len(jobs) {
		t.Errorf("finished %d of %d jobs", len(rep.PerJobFinish), len(jobs))
	}
}

func TestRunJobsReusesIdleInstances(t *testing.T) {
	d := newTestDevice(100)
	jobs := []Job{
		{Name: "a", Design: sim.Design4, Duration: 1},
		{Name: "b", Design: sim.Design4, Duration: 1},
		{Name: "c", Design: sim.Design4, Duration: 1},
	}
	rep, err := RunJobs(d, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Three Design 4 instances fit at 100% — each job gets its own.
	if rep.Placements != 3 {
		t.Errorf("placements = %d, want 3 concurrent instances", rep.Placements)
	}
}

func TestRunJobsEvictsWhenFull(t *testing.T) {
	d := newTestDevice(100)
	jobs := []Job{
		{Name: "big", Design: sim.Design1, Duration: 0.1}, // BRAM 60.71
		{Name: "other", Design: sim.Design2, Duration: 0.1},
	}
	rep, err := RunJobs(d, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// D1 + D2 BRAM = 108.73 > 100: the scheduler must wait for and evict
	// the Design 1 instance before placing Design 2.
	if len(rep.PerJobFinish) != 2 {
		t.Fatalf("jobs incomplete: %v", rep.PerJobFinish)
	}
	if rep.PerJobFinish["other"] <= rep.PerJobFinish["big"] {
		t.Error("second job should finish after the first given the eviction")
	}
}

func TestNewDeviceDefaultLimit(t *testing.T) {
	d := NewDevice(0, reconfig.DefaultTimeModel())
	if d.LimitPercent != 100 {
		t.Errorf("default limit = %v, want 100", d.LimitPercent)
	}
}

func jn(prefix string, i int) string {
	return prefix + "-" + string(rune('0'+i))
}
