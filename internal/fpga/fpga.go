// Package fpga is the host-side runtime the paper's §6.2 multi-tenancy
// discussion implies: a device manager that places independent design
// instances onto the fabric as long as their cumulative resource usage
// stays within the device's limits, evicts them when done, and schedules
// queued jobs across co-located instances — "dynamic partitioning
// [allowing] full exploitation of LUTs, BRAMs, URAMs, and DSPs".
package fpga

import (
	"fmt"
	"sort"

	"misam/internal/reconfig"
	"misam/internal/sim"
)

// Instance is one placed design occupying fabric resources.
type Instance struct {
	Slot   int
	Design sim.DesignID
	// BusyUntil is the simulated time at which the instance frees up.
	BusyUntil float64
}

// Device models one FPGA's fabric budget and the instances on it.
type Device struct {
	// LimitPercent is the usable fraction of each resource class; 100 is
	// raw fabric arithmetic, ~75 reserves shell and routing headroom.
	LimitPercent float64
	// Times prices placements (each placement is a partial
	// reconfiguration of a region sized to the design).
	Times reconfig.TimeModel

	instances map[int]*Instance
	nextSlot  int
}

// NewDevice returns an empty device with the given usable limit.
func NewDevice(limitPercent float64, times reconfig.TimeModel) *Device {
	if limitPercent <= 0 {
		limitPercent = 100
	}
	return &Device{
		LimitPercent: limitPercent,
		Times:        times,
		instances:    map[int]*Instance{},
	}
}

// Utilization reports the cumulative resource usage of placed instances.
func (d *Device) Utilization() sim.Resources {
	var total sim.Resources
	for _, inst := range d.instances {
		r := sim.DesignResources(inst.Design)
		total = sim.Resources{
			LUT: total.LUT + r.LUT, FF: total.FF + r.FF,
			BRAM: total.BRAM + r.BRAM, URAM: total.URAM + r.URAM, DSP: total.DSP + r.DSP,
		}
	}
	return total
}

// Fits reports whether another instance of id can be placed.
func (d *Device) Fits(id sim.DesignID) bool {
	mix := []sim.DesignID{id}
	for _, inst := range d.instances {
		mix = append(mix, inst.Design)
	}
	return sim.CanCoLocate(mix, d.LimitPercent)
}

// Place adds an instance of id, returning its slot and the partial
// reconfiguration time spent programming its region.
func (d *Device) Place(id sim.DesignID) (slot int, programSeconds float64, err error) {
	if !d.Fits(id) {
		return 0, 0, fmt.Errorf("fpga: %v does not fit (utilization %+v, limit %.0f%%)",
			id, d.Utilization(), d.LimitPercent)
	}
	slot = d.nextSlot
	d.nextSlot++
	d.instances[slot] = &Instance{Slot: slot, Design: id}
	return slot, d.Times.PartialReconfig(id, sim.DesignResources(id).Max()/100), nil
}

// Evict removes the instance in slot, freeing its region.
func (d *Device) Evict(slot int) error {
	if _, ok := d.instances[slot]; !ok {
		return fmt.Errorf("fpga: no instance in slot %d", slot)
	}
	delete(d.instances, slot)
	return nil
}

// Instances lists placed instances in slot order.
func (d *Device) Instances() []Instance {
	out := make([]Instance, 0, len(d.instances))
	for _, inst := range d.instances {
		out = append(out, *inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// Job is one queued workload: it needs a specific design for Duration
// simulated seconds.
type Job struct {
	Name     string
	Design   sim.DesignID
	Duration float64
}

// ScheduleReport summarizes a multi-tenant run.
type ScheduleReport struct {
	// Makespan is the simulated completion time of the last job.
	Makespan float64
	// SerialSeconds is the single-tenant baseline: jobs run one at a time
	// on a device that reconfigures between different designs.
	SerialSeconds float64
	// Placements counts region programmings performed.
	Placements int
	// PerJobFinish maps job names to completion times.
	PerJobFinish map[string]float64
}

// RunJobs greedily executes jobs on the device: each job reuses an idle
// instance of its design if one exists, otherwise places a new instance
// when it fits, otherwise waits for the earliest matching or evictable
// instance. It returns the multi-tenant makespan and the single-tenant
// serial baseline for comparison (§6.2: "higher throughput per chip
// through spatial multi-tenancy").
func RunJobs(d *Device, jobs []Job) (ScheduleReport, error) {
	rep := ScheduleReport{PerJobFinish: map[string]float64{}}

	// Serial baseline: one design at a time with full reconfiguration on
	// every design change.
	var serial float64
	var loaded sim.DesignID
	hasLoaded := false
	for _, j := range jobs {
		if !hasLoaded || !sim.SharedBitstream(loaded, j.Design) {
			serial += d.Times.FullReconfig(j.Design)
		}
		loaded, hasLoaded = j.Design, true
		serial += j.Duration
	}
	rep.SerialSeconds = serial

	now := 0.0
	for _, j := range jobs {
		for {
			// Prefer an idle instance of the same design; remember the
			// soonest-free one as a queueing fallback.
			var idle, soonest *Instance
			for _, inst := range d.instances {
				if inst.Design != j.Design {
					continue
				}
				if inst.BusyUntil <= now && idle == nil {
					idle = inst
				}
				if soonest == nil || inst.BusyUntil < soonest.BusyUntil {
					soonest = inst
				}
			}
			if idle != nil {
				idle.BusyUntil = now + j.Duration
				rep.PerJobFinish[j.Name] = idle.BusyUntil
				if idle.BusyUntil > rep.Makespan {
					rep.Makespan = idle.BusyUntil
				}
				break
			}
			// Scale out while the fabric has room.
			if d.Fits(j.Design) {
				slot, prog, err := d.Place(j.Design)
				if err != nil {
					return rep, err
				}
				rep.Placements++
				d.instances[slot].BusyUntil = now + prog
				continue // loop back to assign onto it
			}
			// Fabric full: queue behind the soonest-free matching instance.
			if soonest != nil {
				start := soonest.BusyUntil
				soonest.BusyUntil = start + j.Duration
				rep.PerJobFinish[j.Name] = soonest.BusyUntil
				if soonest.BusyUntil > rep.Makespan {
					rep.Makespan = soonest.BusyUntil
				}
				break
			}
			// Full: evict the idlest foreign instance that has finished.
			evicted := false
			for slot, inst := range d.instances {
				if inst.Design != j.Design && inst.BusyUntil <= now {
					if err := d.Evict(slot); err != nil {
						return rep, err
					}
					evicted = true
					break
				}
			}
			if evicted {
				continue
			}
			// Everything is busy: advance time to the earliest completion.
			earliest := -1.0
			for _, inst := range d.instances {
				if earliest < 0 || inst.BusyUntil < earliest {
					earliest = inst.BusyUntil
				}
			}
			if earliest < 0 || earliest <= now {
				return rep, fmt.Errorf("fpga: scheduler stuck on job %q", j.Name)
			}
			now = earliest
		}
	}
	return rep, nil
}
