package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestCatalogShapes(t *testing.T) {
	// Spot-check published shapes.
	r, c := VGG16.Layers[13].WeightShape() // fc6
	if r != 4096 || c != 25088 {
		t.Errorf("VGG fc6 = %dx%d, want 4096x25088", r, c)
	}
	r, c = ResNet50.Layers[0].WeightShape() // conv1: 64 × 3·7·7
	if r != 64 || c != 147 {
		t.Errorf("ResNet conv1 = %dx%d, want 64x147", r, c)
	}
	r, c = BERTBase.Layers[2].WeightShape() // ffn.up
	if r != 3072 || c != 768 {
		t.Errorf("BERT ffn.up = %dx%d, want 3072x768", r, c)
	}
}

func TestCatalogParameterCounts(t *testing.T) {
	// VGG-16 has ~138M parameters; our conv+fc catalog covers the vast
	// majority of them.
	if w := VGG16.TotalWeights(); w < 130e6 || w > 145e6 {
		t.Errorf("VGG-16 weights = %d, want ≈138M", w)
	}
	// ResNet-50's distinct-shape catalog undercounts the full 25.6M
	// (repeated blocks are listed once) but must be in the millions.
	if w := ResNet50.TotalWeights(); w < 5e6 {
		t.Errorf("ResNet-50 catalog weights = %d, implausibly small", w)
	}
}

func TestPrunedWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wls := MobileNetV1.PrunedWorkloads(rng, 0.2, 64, 4)
	if len(wls) != len(MobileNetV1.Layers) {
		t.Fatalf("got %d workloads, want %d", len(wls), len(MobileNetV1.Layers))
	}
	for _, wl := range wls {
		if wl.A.Cols != wl.B.Rows {
			t.Errorf("%s: incompatible dims", wl.Name)
		}
		if wl.Category != MSxD {
			t.Errorf("%s: category %v", wl.Name, wl.Category)
		}
		if d := wl.A.Density(); math.Abs(d-0.2) > 0.08 {
			t.Errorf("%s: density %.3f, want ≈0.2", wl.Name, d)
		}
		if wl.B.Cols != 64 {
			t.Errorf("%s: activation width %d", wl.Name, wl.B.Cols)
		}
	}
}

func TestPrunedWorkloadsReductionCapsDims(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	wls := VGG16.PrunedWorkloads(rng, 0.1, 32, 16)
	for _, wl := range wls {
		if wl.A.Rows > 512 || wl.A.Cols > 512 {
			t.Errorf("%s: %dx%d exceeds the reduction cap", wl.Name, wl.A.Rows, wl.A.Cols)
		}
	}
}

func TestModelsCatalogNonEmpty(t *testing.T) {
	if len(Models) < 4 {
		t.Fatal("catalog should include the paper's four model families")
	}
	for _, m := range Models {
		if m.Name == "" || len(m.Layers) == 0 {
			t.Errorf("degenerate model %+v", m)
		}
	}
}
