package workload

import (
	"fmt"
	"math"
	"math/rand"

	"misam/internal/sparse"
)

// Application phase traces: the paper's introduction motivates runtime
// adaptation with applications that "traverse multiple sparsity regimes
// during execution" — a network being pruned grows sparser epoch by
// epoch; a multilevel graph algorithm coarsens its matrix level by
// level. A Phase is one steady-state segment of such a trace; the
// reconfiguration engine gets to adapt between phases.

// Phase is one segment of an evolving application.
type Phase struct {
	Name string
	A, B *sparse.CSR
	// Invocations is how many SpGEMM calls the application performs in
	// this phase (the engine's amortization horizon).
	Invocations int
}

// PruningTrace models training-time pruning (§1: "techniques such as
// pruning can significantly increase sparsity in specific layers"): a
// weight matrix starts moderately dense and is pruned harder after each
// phase, while the activation block stays dense.
func PruningTrace(rng *rand.Rand, rows, cols, seqLen, phases, invocationsPerPhase int) []Phase {
	if phases < 2 {
		phases = 2
	}
	out := make([]Phase, 0, phases)
	for p := 0; p < phases; p++ {
		// Density decays geometrically from 0.5 toward ~0.02.
		frac := float64(p) / float64(phases-1)
		density := 0.5 * math.Pow(0.04, frac)
		w := sparse.DNNPruned(rng, rows, cols, density, true, 4)
		act := sparse.DenseRandom(rng, cols, seqLen)
		out = append(out, Phase{
			Name:        fmt.Sprintf("epoch-%d (density %.3f)", p, density),
			A:           w,
			B:           act,
			Invocations: invocationsPerPhase,
		})
	}
	return out
}

// CoarseningTrace models a multilevel graph algorithm: each level
// contracts the graph to roughly half the vertices while the average
// degree rises, and every level squares its operator (A×A).
func CoarseningTrace(rng *rand.Rand, n0, degree0, levels, invocationsPerLevel int) []Phase {
	if levels < 2 {
		levels = 2
	}
	out := make([]Phase, 0, levels)
	n, deg := n0, degree0
	for l := 0; l < levels; l++ {
		if n < 64 {
			n = 64
		}
		a := sparse.PowerLaw(rng, n, n, n*deg, 1.8)
		out = append(out, Phase{
			Name:        fmt.Sprintf("level-%d (n=%d, deg≈%d)", l, n, deg),
			A:           a,
			B:           a,
			Invocations: invocationsPerLevel,
		})
		n /= 2
		deg = deg*3/2 + 1
	}
	return out
}

// SolverTrace models an adaptive solver switching right-hand-side blocks:
// early phases use a dense multi-RHS block, later phases a sparse
// correction block — the HS×D → HS×MS regime shift.
func SolverTrace(rng *rand.Rand, n, rhsCols, phases, invocationsPerPhase int) []Phase {
	if phases < 2 {
		phases = 2
	}
	a := sparse.Banded(rng, n, n, 4, 0.8)
	out := make([]Phase, 0, phases)
	for p := 0; p < phases; p++ {
		frac := float64(p) / float64(phases-1)
		density := 1.0 - 0.97*frac
		var b *sparse.CSR
		if density > 0.99 {
			b = sparse.DenseRandom(rng, n, rhsCols)
		} else {
			b = sparse.Uniform(rng, n, rhsCols, density)
		}
		out = append(out, Phase{
			Name:        fmt.Sprintf("stage-%d (RHS density %.2f)", p, density),
			A:           a,
			B:           b,
			Invocations: invocationsPerPhase,
		})
	}
	return out
}
