// Package workload reproduces the paper's evaluation workloads (§4): the
// 116 standalone multiplications — 15 MS×D, 38 MS×MS, 12 HS×D, 36 HS×MS
// and 12 HS×HS — and the Table 3 suite of highly sparse matrices.
// SuiteSparse matrices are not available offline, so each Table 3 entry
// is synthesized with the paper's published rows/nnz/density and a
// pattern family matched to its application domain (power-law for
// web/social/peer-to-peer graphs, banded FEM-like structure for the
// scientific matrices, block structure for circuits). DNN matrices use
// structured pruning at the paper's 0.1/0.2 densities.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"misam/internal/sparse"
)

// Category is a workload sparsity class from §4.
type Category int

const (
	MSxD Category = iota
	MSxMS
	HSxD
	HSxMS
	HSxHS
	NumCategories
)

// String names the category as the paper does.
func (c Category) String() string {
	switch c {
	case MSxD:
		return "MSxD"
	case MSxMS:
		return "MSxMS"
	case HSxD:
		return "HSxD"
	case HSxMS:
		return "HSxMS"
	case HSxHS:
		return "HSxHS"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all workload categories in order.
var Categories = []Category{MSxD, MSxMS, HSxD, HSxMS, HSxHS}

// Workload is one standalone multiplication.
type Workload struct {
	Name     string
	Category Category
	A, B     *sparse.CSR
}

// PatternFamily tags the generator used for a Table 3 stand-in.
type PatternFamily int

const (
	PatternPowerLaw PatternFamily = iota
	PatternBanded
	PatternBlock
)

// HSMatrixSpec is one Table 3 row: the published name, density, rows and
// nonzero count, plus the pattern family inferred from its domain.
type HSMatrixSpec struct {
	Name    string
	ID      string
	Density float64
	Rows    int
	NNZ     int
	Family  PatternFamily
}

// Table3 lists the 16 highly sparse matrices of Table 3 with their
// published statistics.
var Table3 = []HSMatrixSpec{
	{"p2p-Gnutella24", "p2p", 9.3e-5, 26518, 65369, PatternPowerLaw},
	{"sx-mathoverflow", "sx", 3.9e-4, 24818, 239978, PatternPowerLaw},
	{"ca-CondMat", "cond", 3.5e-4, 23133, 186936, PatternPowerLaw},
	{"Oregon-2", "ore", 3.5e-4, 11806, 65460, PatternPowerLaw},
	{"email-Enron", "em", 2.7e-4, 36692, 367662, PatternPowerLaw},
	{"opt1", "opt", 8.1e-3, 15449, 1930655, PatternBlock},
	{"scircuit", "sc", 3.3e-5, 170998, 958936, PatternBlock},
	{"gupta2", "gup", 1.1e-3, 62064, 4248286, PatternBlock},
	{"sme3Db", "sme", 2.5e-3, 29067, 2081063, PatternBanded},
	{"poisson3Da", "poi", 1.9e-3, 13514, 352762, PatternBanded},
	{"wiki-RfA", "wiki", 1.5e-3, 11380, 188077, PatternPowerLaw},
	{"ca-AstroPh", "astro", 1.1e-3, 18772, 396160, PatternPowerLaw},
	{"msc10848", "ms", 1.0e-2, 10848, 1229776, PatternBanded},
	{"ramage02", "ram", 1.0e-2, 16830, 2866352, PatternBanded},
	{"cage12", "cage", 1.2e-4, 130228, 2032536, PatternBanded},
	{"goodwin", "good", 6.0e-3, 7320, 324772, PatternBanded},
}

// Options scales workload generation. The paper's matrices reach 4.2 M
// nonzeros and 171 k rows; Reduction divides rows and nonzeros so tests
// and quick benches stay tractable while preserving density and pattern.
type Options struct {
	// Reduction divides Table 3 rows and nnz (1 = paper scale).
	Reduction int
	// DenseCols is the dense-B width (512 in §4).
	DenseCols int
	// Seed drives the generators.
	Seed int64
}

// DefaultOptions is paper-faithful except for an 8× size reduction.
func DefaultOptions() Options {
	return Options{Reduction: 8, DenseCols: 512, Seed: 1}
}

// Generate synthesizes one Table 3 stand-in at the given reduction.
func (spec HSMatrixSpec) Generate(rng *rand.Rand, reduction int) *sparse.CSR {
	if reduction < 1 {
		reduction = 1
	}
	rows := spec.Rows / reduction
	if rows < 64 {
		rows = 64
	}
	// Preserve the published average degree (nnz per row): scaling a graph
	// or mesh keeps row populations, so nnz shrinks linearly with rows.
	nnz := int(float64(spec.NNZ) * float64(rows) / float64(spec.Rows))
	if nnz < rows {
		nnz = rows
	}
	switch spec.Family {
	case PatternPowerLaw:
		return sparse.PowerLaw(rng, rows, rows, nnz, 1.9)
	case PatternBanded:
		// Half-bandwidth sized so the band holds the target nnz.
		perRow := float64(nnz) / float64(rows)
		half := int(math.Ceil(perRow / 2 / 0.8))
		if half < 1 {
			half = 1
		}
		return sparse.Banded(rng, rows, rows, half, 0.8)
	default: // PatternBlock
		block := 32
		inner := 0.5
		blocks := float64(rows/block) * float64(rows/block)
		need := float64(nnz) / (inner * float64(block*block))
		dens := need / math.Max(1, blocks)
		if dens > 1 {
			dens = 1
		}
		return sparse.Block(rng, rows, rows, block, dens, inner)
	}
}

// dnnLayerShapes are representative (out, in) channel shapes from
// ResNet-50 and VGG-16 im2col-style weight matrices.
var resnetShapes = [][2]int{
	{64, 147}, {64, 64}, {64, 576}, {256, 64}, {128, 256},
	{128, 1152}, {512, 128}, {256, 512}, {256, 2304}, {1024, 256},
	{512, 1024}, {512, 4608}, {2048, 512}, {1000, 2048}, {256, 1024},
}

var vggShapes = [][2]int{
	{64, 27}, {64, 576}, {128, 576}, {128, 1152}, {256, 1152},
	{256, 2304}, {256, 2304}, {512, 2304}, {512, 4608}, {512, 4608},
	{512, 4608}, {512, 4608}, {512, 4608}, {4096, 25088}, {4096, 4096},
	{1000, 4096}, {512, 2048}, {1024, 1024}, {2048, 2048},
}

// capShape bounds DNN layer dims under the reduction factor.
func capShape(s [2]int, reduction int) (int, int) {
	maxDim := 4096 / reduction * 2
	if maxDim < 128 {
		maxDim = 128
	}
	m, k := s[0], s[1]
	if m > maxDim {
		m = maxDim
	}
	if k > maxDim {
		k = maxDim
	}
	return m, k
}

// hsSubset returns the 12 Table 3 matrices used for the HS categories
// (the paper evaluates "the same 12 diverse matrices used in Trapezoid").
func hsSubset() []HSMatrixSpec {
	picks := []string{"p2p", "sx", "cond", "ore", "em", "sc", "poi", "wiki", "astro", "cage", "good", "ms"}
	set := map[string]bool{}
	for _, p := range picks {
		set[p] = true
	}
	var out []HSMatrixSpec
	for _, s := range Table3 {
		if set[s.ID] {
			out = append(out, s)
		}
	}
	return out
}

// Suite generates the full 116-workload evaluation set of §4.
func Suite(opt Options) []Workload {
	rng := rand.New(rand.NewSource(opt.Seed))
	if opt.Reduction < 1 {
		opt.Reduction = 1
	}
	if opt.DenseCols <= 0 {
		opt.DenseCols = 512
	}
	denseCols := opt.DenseCols
	var out []Workload

	// 15 MS×D: pruned ResNet-50 layers × dense with sequence length 512.
	for i, shape := range resnetShapes {
		m, k := capShape(shape, opt.Reduction)
		dens := 0.1
		if i%2 == 1 {
			dens = 0.2
		}
		a := sparse.DNNPruned(rng, m, k, dens, true, 4)
		b := sparse.DenseRandom(rng, k, denseCols)
		out = append(out, Workload{Name: fmt.Sprintf("resnet50-L%02d-d%.1f", i, dens), Category: MSxD, A: a, B: b})
	}

	// 38 MS×MS: pruned VGG-16 layers at densities 0.1 and 0.2.
	for i, shape := range vggShapes {
		m, k := capShape(shape, opt.Reduction)
		for _, dens := range []float64{0.1, 0.2} {
			a := sparse.DNNPruned(rng, m, k, dens, true, 4)
			b := sparse.DNNPruned(rng, k, m, dens, true, 4)
			out = append(out, Workload{Name: fmt.Sprintf("vgg16-L%02d-d%.1f", i, dens), Category: MSxMS, A: a, B: b})
		}
	}

	// 12 HS×D: Table 3 matrices × dense B with 512 columns.
	hs := hsSubset()
	for _, spec := range hs {
		a := spec.Generate(rng, opt.Reduction)
		b := sparse.DenseRandom(rng, a.Cols, denseCols)
		out = append(out, Workload{Name: spec.ID + "-xD", Category: HSxD, A: a, B: b})
	}

	// 36 HS×MS: each HS matrix × random sparse B (512 cols) at B
	// sparsity 0.2, 0.4, 0.6.
	for _, spec := range hs {
		a := spec.Generate(rng, opt.Reduction)
		for _, sp := range []float64{0.2, 0.4, 0.6} {
			b := sparse.Uniform(rng, a.Cols, denseCols, 1-sp)
			out = append(out, Workload{Name: fmt.Sprintf("%s-xMS%.1f", spec.ID, sp), Category: HSxMS, A: a, B: b})
		}
	}

	// 12 HS×HS: A×A self-multiplication.
	for _, spec := range hs {
		a := spec.Generate(rng, opt.Reduction)
		out = append(out, Workload{Name: spec.ID + "-sq", Category: HSxHS, A: a, B: a})
	}

	return out
}

// CountByCategory tallies a suite per category.
func CountByCategory(ws []Workload) [NumCategories]int {
	var out [NumCategories]int
	for _, w := range ws {
		out[w.Category]++
	}
	return out
}

// ApplicationPoint is one entry of Figure 1's sparsity-space scatter:
// where an application's A×B sparsities typically fall.
type ApplicationPoint struct {
	Application string
	// ASparsity and BSparsity are typical operand sparsities in [0,1].
	ASparsity, BSparsity float64
	// Regime is the paper's color coding, e.g. "HSxHS".
	Regime string
}

// Figure1Points places the applications of Figure 1 in sparsity space.
var Figure1Points = []ApplicationPoint{
	{"Graph analytics (triangle counting)", 0.9999, 0.9999, "HSxHS"},
	{"Scientific computing (FEM solvers)", 0.998, 0.998, "HSxHS"},
	{"Multi-RHS direct solvers", 0.999, 0.0, "HSxD"},
	{"GNN aggregation", 0.999, 0.4, "HSxMS"},
	{"Pruned CNN inference", 0.8, 0.0, "MSxD"},
	{"Pruned transformer FFN", 0.85, 0.85, "MSxMS"},
	{"LLM MoE routing", 0.9, 0.5, "MSxMS"},
	{"Recommendation embeddings", 0.95, 0.3, "HSxMS"},
	{"Dense attention", 0.0, 0.0, "DxD"},
}
