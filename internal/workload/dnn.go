package workload

import (
	"math/rand"

	"misam/internal/sparse"
)

// DNN model catalog: the architectures the paper derives its moderately
// sparse and dense matrices from ("VGG, ResNet, MobileNet, and
// ImageNet-scale models", §4). Convolutions are represented by their
// im2col weight matrices: out_channels × (in_channels × k × k).

// DNNLayer is one weight tensor.
type DNNLayer struct {
	Name        string
	OutChannels int
	InChannels  int
	Kernel      int // 1 for fully connected layers
}

// WeightShape returns the im2col weight-matrix dimensions.
func (l DNNLayer) WeightShape() (rows, cols int) {
	return l.OutChannels, l.InChannels * l.Kernel * l.Kernel
}

// DNNModel is a named architecture.
type DNNModel struct {
	Name   string
	Layers []DNNLayer
}

// ResNet50 lists the distinct weight shapes of ResNet-50's stages.
var ResNet50 = DNNModel{Name: "ResNet-50", Layers: []DNNLayer{
	{"conv1", 64, 3, 7},
	{"conv2.1x1a", 64, 64, 1}, {"conv2.3x3", 64, 64, 3}, {"conv2.1x1b", 256, 64, 1},
	{"conv3.1x1a", 128, 256, 1}, {"conv3.3x3", 128, 128, 3}, {"conv3.1x1b", 512, 128, 1},
	{"conv4.1x1a", 256, 512, 1}, {"conv4.3x3", 256, 256, 3}, {"conv4.1x1b", 1024, 256, 1},
	{"conv5.1x1a", 512, 1024, 1}, {"conv5.3x3", 512, 512, 3}, {"conv5.1x1b", 2048, 512, 1},
	{"fc", 1000, 2048, 1},
}}

// VGG16 lists VGG-16's weight shapes.
var VGG16 = DNNModel{Name: "VGG-16", Layers: []DNNLayer{
	{"conv1_1", 64, 3, 3}, {"conv1_2", 64, 64, 3},
	{"conv2_1", 128, 64, 3}, {"conv2_2", 128, 128, 3},
	{"conv3_1", 256, 128, 3}, {"conv3_2", 256, 256, 3}, {"conv3_3", 256, 256, 3},
	{"conv4_1", 512, 256, 3}, {"conv4_2", 512, 512, 3}, {"conv4_3", 512, 512, 3},
	{"conv5_1", 512, 512, 3}, {"conv5_2", 512, 512, 3}, {"conv5_3", 512, 512, 3},
	{"fc6", 4096, 25088, 1}, {"fc7", 4096, 4096, 1}, {"fc8", 1000, 4096, 1},
}}

// MobileNetV1 lists MobileNet's pointwise layers (the depthwise stages
// are channel-diagonal and do not form SpGEMM workloads).
var MobileNetV1 = DNNModel{Name: "MobileNet-V1", Layers: []DNNLayer{
	{"conv1", 32, 3, 3},
	{"pw1", 64, 32, 1}, {"pw2", 128, 64, 1}, {"pw3", 128, 128, 1},
	{"pw4", 256, 128, 1}, {"pw5", 256, 256, 1}, {"pw6", 512, 256, 1},
	{"pw7", 512, 512, 1}, {"pw8", 1024, 512, 1}, {"pw9", 1024, 1024, 1},
	{"fc", 1000, 1024, 1},
}}

// BERTBase lists the transformer FFN and projection shapes of BERT-base
// (the paper's LLM-adjacent regime in Figure 1).
var BERTBase = DNNModel{Name: "BERT-base", Layers: []DNNLayer{
	{"attn.qkv", 2304, 768, 1}, {"attn.out", 768, 768, 1},
	{"ffn.up", 3072, 768, 1}, {"ffn.down", 768, 3072, 1},
}}

// Models lists the catalog.
var Models = []DNNModel{ResNet50, VGG16, MobileNetV1, BERTBase}

// PrunedWorkloads generates one MS×D workload per layer of a model:
// the structurally pruned weight matrix times a dense activation block
// of the given sequence length. reduction caps layer dimensions.
func (m DNNModel) PrunedWorkloads(rng *rand.Rand, density float64, seqLen, reduction int) []Workload {
	if reduction < 1 {
		reduction = 1
	}
	var out []Workload
	for _, l := range m.Layers {
		rows, cols := l.WeightShape()
		rows, cols = capShapeDim(rows, reduction), capShapeDim(cols, reduction)
		w := sparse.DNNPruned(rng, rows, cols, density, true, 4)
		act := sparse.DenseRandom(rng, cols, seqLen)
		out = append(out, Workload{
			Name:     m.Name + "/" + l.Name,
			Category: MSxD,
			A:        w,
			B:        act,
		})
	}
	return out
}

// capShapeDim bounds a layer dimension under the reduction factor.
func capShapeDim(d, reduction int) int {
	maxDim := 8192 / reduction
	if maxDim < 64 {
		maxDim = 64
	}
	if d > maxDim {
		return maxDim
	}
	if d < 1 {
		return 1
	}
	return d
}

// TotalWeights reports the dense parameter count of the model's catalog
// layers.
func (m DNNModel) TotalWeights() int64 {
	var total int64
	for _, l := range m.Layers {
		r, c := l.WeightShape()
		total += int64(r) * int64(c)
	}
	return total
}
