package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestSuiteCountsMatchPaper(t *testing.T) {
	ws := Suite(Options{Reduction: 32, DenseCols: 64, Seed: 1})
	counts := CountByCategory(ws)
	// Per-category counts from §4. (The paper says "116 workloads" but its
	// own category counts 15+38+12+36+12 sum to 113; we follow the
	// category breakdown.)
	want := map[Category]int{MSxD: 15, MSxMS: 38, HSxD: 12, HSxMS: 36, HSxHS: 12}
	total := 0
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%v count = %d, want %d", cat, counts[cat], n)
		}
		total += n
	}
	if len(ws) != total {
		t.Errorf("suite has %d workloads, want %d", len(ws), total)
	}
}

func TestSuiteDimsCompatible(t *testing.T) {
	ws := Suite(Options{Reduction: 32, DenseCols: 64, Seed: 2})
	for _, w := range ws {
		if w.A.Cols != w.B.Rows {
			t.Errorf("%s: A %dx%d incompatible with B %dx%d", w.Name, w.A.Rows, w.A.Cols, w.B.Rows, w.B.Cols)
		}
		if err := w.A.Validate(); err != nil {
			t.Errorf("%s: invalid A: %v", w.Name, err)
		}
		if err := w.B.Validate(); err != nil {
			t.Errorf("%s: invalid B: %v", w.Name, err)
		}
	}
}

func TestHSxHSIsSelfMultiplication(t *testing.T) {
	ws := Suite(Options{Reduction: 32, DenseCols: 64, Seed: 3})
	for _, w := range ws {
		if w.Category == HSxHS && w.A != w.B {
			t.Errorf("%s: HSxHS should be A×A", w.Name)
		}
	}
}

func TestTable3SpecsMatchPaper(t *testing.T) {
	if len(Table3) != 16 {
		t.Fatalf("Table 3 has %d rows, want 16", len(Table3))
	}
	byID := map[string]HSMatrixSpec{}
	for _, s := range Table3 {
		byID[s.ID] = s
	}
	sc := byID["sc"]
	if sc.Rows != 170998 || sc.NNZ != 958936 {
		t.Errorf("scircuit spec %+v disagrees with Table 3", sc)
	}
	gup := byID["gup"]
	if gup.NNZ != 4248286 {
		t.Errorf("gupta2 nnz = %d, want 4248286", gup.NNZ)
	}
}

func TestGeneratePreservesDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, spec := range Table3 {
		m := spec.Generate(rng, 16)
		wantDegree := float64(spec.NNZ) / float64(spec.Rows)
		gotDegree := float64(m.NNZ()) / float64(m.Rows)
		// Within 2.5× of the published average degree (band/block
		// quantization and min-1-per-row floors).
		if gotDegree < wantDegree/2.5 || gotDegree > wantDegree*2.5 {
			t.Errorf("%s: generated degree %.1f vs published %.1f", spec.Name, gotDegree, wantDegree)
		}
		if m.Rows < 64 {
			t.Errorf("%s: degenerate stand-in (%d rows)", spec.Name, m.Rows)
		}
	}
}

func TestGenerateFullScaleRowCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := Table3[0] // p2p-Gnutella24
	m := spec.Generate(rng, 1)
	if m.Rows != spec.Rows {
		t.Errorf("full-scale rows = %d, want %d", m.Rows, spec.Rows)
	}
	if math.Abs(float64(m.NNZ())-float64(spec.NNZ))/float64(spec.NNZ) > 0.5 {
		t.Errorf("full-scale nnz = %d, want ≈%d", m.NNZ(), spec.NNZ)
	}
}

func TestPowerLawStandInsAreSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, spec := range Table3 {
		if spec.Family != PatternPowerLaw {
			continue
		}
		m := spec.Generate(rng, 16)
		maxRow, sum := 0, 0
		for r := 0; r < m.Rows; r++ {
			n := m.RowNNZ(r)
			sum += n
			if n > maxRow {
				maxRow = n
			}
		}
		avg := float64(sum) / float64(m.Rows)
		if float64(maxRow) < 3*avg {
			t.Errorf("%s: power-law stand-in not skewed (max %d, avg %.1f)", spec.Name, maxRow, avg)
		}
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{MSxD: "MSxD", MSxMS: "MSxMS", HSxD: "HSxD", HSxMS: "HSxMS", HSxHS: "HSxHS"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Category %d = %q, want %q", c, c.String(), want)
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Error("invalid category formatting")
	}
}

func TestSuiteDeterministicPerSeed(t *testing.T) {
	a := Suite(Options{Reduction: 32, DenseCols: 64, Seed: 9})
	b := Suite(Options{Reduction: 32, DenseCols: 64, Seed: 9})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].A.NNZ() != b[i].A.NNZ() {
			t.Fatalf("workload %d differs between identical seeds", i)
		}
	}
}

func TestFigure1PointsWellFormed(t *testing.T) {
	if len(Figure1Points) < 5 {
		t.Fatal("Figure 1 needs several application clusters")
	}
	for _, p := range Figure1Points {
		if p.ASparsity < 0 || p.ASparsity > 1 || p.BSparsity < 0 || p.BSparsity > 1 {
			t.Errorf("%s: sparsities out of range", p.Application)
		}
		if p.Regime == "" || p.Application == "" {
			t.Error("empty labels in Figure 1 points")
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions()
	if opt.DenseCols != 512 {
		t.Errorf("default dense cols %d, want paper's 512", opt.DenseCols)
	}
	if opt.Reduction < 1 {
		t.Error("reduction must be at least 1")
	}
}
