package dataset

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
)

// Corpus persistence: labelling a paper-scale corpus costs minutes of
// simulation, so trained corpora can be cached and shared between the
// selector, the latency predictor, the Trapezoid integration and the
// device router without re-simulating.

// WriteCorpus gob-encodes the corpus (gzip-compressed) including the
// operand matrices, features, latencies and energies.
func WriteCorpus(w io.Writer, c *Corpus) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(c); err != nil {
		return fmt.Errorf("dataset: encode corpus: %w", err)
	}
	return zw.Close()
}

// ReadCorpus decodes a corpus written by WriteCorpus and validates its
// structural invariants.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: corpus is not gzip: %w", err)
	}
	defer zr.Close()
	var c Corpus
	if err := gob.NewDecoder(zr).Decode(&c); err != nil {
		return nil, fmt.Errorf("dataset: decode corpus: %w", err)
	}
	for i := range c.Samples {
		s := &c.Samples[i]
		if s.Pair.A == nil || s.Pair.B == nil {
			return nil, fmt.Errorf("dataset: sample %d missing operands", i)
		}
		if err := s.Pair.A.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: sample %d: %w", i, err)
		}
		for _, l := range s.LatencySec {
			if l < 0 {
				return nil, fmt.Errorf("dataset: sample %d has negative latency", i)
			}
		}
	}
	return &c, nil
}
