package dataset

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/sim"
	"misam/internal/sparse"
)

func smallCorpus(t *testing.T, n int) *Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	c, err := GenerateClassifier(rng, n, 512)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateClassifierShape(t *testing.T) {
	c := smallCorpus(t, 40)
	if len(c.Samples) != 40 {
		t.Fatalf("got %d samples, want 40", len(c.Samples))
	}
	x := c.X()
	y := c.Labels()
	if len(x) != 40 || len(y) != 40 {
		t.Fatal("X/Labels length mismatch")
	}
	for i, row := range x {
		if len(row) != features.NumFeatures {
			t.Fatalf("sample %d has %d features", i, len(row))
		}
		if y[i] < 0 || y[i] >= int(sim.NumDesigns) {
			t.Fatalf("sample %d label %d out of range", i, y[i])
		}
	}
}

func TestLabelsAreArgmin(t *testing.T) {
	c := smallCorpus(t, 25)
	for i, s := range c.Samples {
		for _, id := range sim.AllDesigns {
			if s.LatencySec[id] < s.LatencySec[s.Best] {
				t.Errorf("sample %d: label %v but %v is faster", i, s.Best, id)
			}
		}
	}
}

func TestCorpusCoversMultipleClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c, err := GenerateClassifier(rng, 120, 768)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.ClassCounts()
	nonEmpty := 0
	for _, n := range counts {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Errorf("corpus covers only %d classes (%v); selection would be trivial", nonEmpty, counts)
	}
}

func TestRandomPairDimsCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		p := RandomPair(rng, 700)
		if p.A.Cols != p.B.Rows {
			t.Fatalf("pair %d (%s): A %dx%d vs B %dx%d", i, p.Family, p.A.Rows, p.A.Cols, p.B.Rows, p.B.Cols)
		}
		// The "large" family goes up to 128× maxDim by design (the
		// Figure 8 streaming regime).
		if p.A.Rows > 700*128 || p.B.Cols > 700*128 {
			t.Fatalf("pair %d exceeds dimension bound", i)
		}
		if err := p.A.Validate(); err != nil {
			t.Fatalf("pair %d A invalid: %v", i, err)
		}
	}
}

func TestLatencyTargetRoundTrip(t *testing.T) {
	for _, sec := range []float64{1e-6, 1e-3, 0.5, 3.0} {
		got := LatencyFromTarget(LatencyTarget(sec))
		if math.Abs(got-sec)/sec > 1e-9 {
			t.Errorf("round trip %v -> %v", sec, got)
		}
	}
	// Degenerate latencies clamp rather than produce -Inf.
	if math.IsInf(LatencyTarget(0), -1) {
		t.Error("zero latency produced -Inf target")
	}
}

func TestLatencyRecordFeatures(t *testing.T) {
	var v features.Vector
	v[0] = 42
	rec := LatencyRecordFeatures(v, sim.Design3)
	if len(rec) != features.NumFeatures+int(sim.NumDesigns) {
		t.Fatalf("record length %d", len(rec))
	}
	if rec[0] != 42 {
		t.Error("features not copied")
	}
	for _, id := range sim.AllDesigns {
		want := 0.0
		if id == sim.Design3 {
			want = 1
		}
		if rec[features.NumFeatures+int(id)] != want {
			t.Errorf("one-hot wrong at %v", id)
		}
	}
}

func TestGenerateLatencyShape(t *testing.T) {
	c := smallCorpus(t, 15)
	x, y := GenerateLatency(c)
	if len(x) != 15*int(sim.NumDesigns) || len(y) != len(x) {
		t.Fatalf("latency set %d×%d, want %d", len(x), len(y), 15*int(sim.NumDesigns))
	}
	for _, target := range y {
		if math.IsNaN(target) || math.IsInf(target, 0) {
			t.Fatal("non-finite latency target")
		}
	}
}

// TestSelectorLearnsFromCorpus is the end-to-end §3.1 sanity check: a
// decision tree trained on corpus features should beat chance comfortably.
func TestSelectorLearnsFromCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, err := GenerateClassifier(rng, 220, 640)
	if err != nil {
		t.Fatal(err)
	}
	x, y := c.X(), c.Labels()
	train, test := mltree.StratifiedSplit(y, int(sim.NumDesigns), 0.7, rng)
	trX := make([][]float64, len(train))
	trY := make([]int, len(train))
	for i, j := range train {
		trX[i], trY[i] = x[j], y[j]
	}
	teX := make([][]float64, len(test))
	teY := make([]int, len(test))
	for i, j := range test {
		teX[i], teY[i] = x[j], y[j]
	}
	cls, err := mltree.TrainClassifier(trX, trY, int(sim.NumDesigns),
		mltree.BalancedWeights(trY, int(sim.NumDesigns)), mltree.Config{MaxDepth: 8, MinSamplesLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc := mltree.Accuracy(cls.PredictBatch(teX), teY)
	if acc < 0.6 {
		t.Errorf("selector accuracy %.2f; corpus is not learnable", acc)
	}
	t.Logf("selector accuracy on held-out corpus: %.2f", acc)
}

func TestGenerateClassifierDeterministicAcrossParallelism(t *testing.T) {
	// Same master seed must yield identical corpora regardless of worker
	// scheduling.
	a, err := GenerateClassifier(rand.New(rand.NewSource(99)), 30, 384)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClassifier(rand.New(rand.NewSource(99)), 30, 384)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].Features != b.Samples[i].Features {
			t.Fatalf("sample %d features differ across runs", i)
		}
		if a.Samples[i].Best != b.Samples[i].Best {
			t.Fatalf("sample %d label differs across runs", i)
		}
	}
}

// TestLabelAllDedupsIdenticalPairs: content-equal pairs (even in
// distinct storage, under distinct family tags) are labelled once and
// the sample replicated with each duplicate's own metadata intact.
func TestLabelAllDedupsIdenticalPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := sparse.Uniform(rng, 150, 150, 0.05)
	b := sparse.DenseRandom(rng, 150, 16)
	c := sparse.Uniform(rng, 120, 140, 0.04)
	d := sparse.DenseRandom(rng, 140, 8)
	// A structural copy: equal bytes, separate backing arrays — the dedup
	// must key on content, not pointers.
	aCopy := &sparse.CSR{
		Rows: a.Rows, Cols: a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	pairs := []Pair{
		{Family: "orig", A: a, B: b},
		{Family: "copy", A: aCopy, B: b},
		{Family: "other", A: c, B: d},
		{Family: "orig-again", A: a, B: b},
	}
	samples, err := LabelAll(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(pairs) {
		t.Fatalf("got %d samples, want %d", len(samples), len(pairs))
	}
	for _, i := range []int{1, 3} {
		if samples[i].LatencySec != samples[0].LatencySec ||
			samples[i].EnergyJ != samples[0].EnergyJ ||
			samples[i].Best != samples[0].Best ||
			samples[i].Features != samples[0].Features {
			t.Errorf("duplicate %d's label data diverged from its representative", i)
		}
		if samples[i].Pair.Family != pairs[i].Family || samples[i].Pair.A != pairs[i].A {
			t.Errorf("duplicate %d lost its own Pair metadata", i)
		}
	}
	// The replicated labels must equal a direct (non-deduped) labelling.
	direct, err := Label(pairs[1])
	if err != nil {
		t.Fatal(err)
	}
	if direct.LatencySec != samples[1].LatencySec || direct.Best != samples[1].Best {
		t.Error("deduped sample differs from directly labelling the duplicate")
	}
	if samples[2].LatencySec == samples[0].LatencySec {
		t.Error("distinct pairs produced identical latencies (suspicious dedup over-merge)")
	}
}
