package dataset

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCorpusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := GenerateClassifier(rng, 20, 256)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(c.Samples) {
		t.Fatalf("got %d samples, want %d", len(got.Samples), len(c.Samples))
	}
	for i := range c.Samples {
		if got.Samples[i].Best != c.Samples[i].Best {
			t.Fatalf("sample %d label changed", i)
		}
		if got.Samples[i].Features != c.Samples[i].Features {
			t.Fatalf("sample %d features changed", i)
		}
		if got.Samples[i].Pair.A.NNZ() != c.Samples[i].Pair.A.NNZ() {
			t.Fatalf("sample %d operand changed", i)
		}
		if got.Samples[i].LatencySec != c.Samples[i].LatencySec {
			t.Fatalf("sample %d latencies changed", i)
		}
	}
}

func TestReadCorpusRejectsGarbage(t *testing.T) {
	if _, err := ReadCorpus(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("accepted non-gzip input")
	}
}

func TestCorpusCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c, err := GenerateClassifier(rng, 10, 256)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	// The envelope is a sanity bound, not a tight one: indices gzip well.
	totalNNZ := 0
	for _, s := range c.Samples {
		totalNNZ += s.Pair.A.NNZ() + s.Pair.B.NNZ()
	}
	if buf.Len() > totalNNZ*24+1<<20 {
		t.Errorf("corpus file %d bytes for %d nonzeros; compression broken?", buf.Len(), totalNNZ)
	}
}
