// Package dataset generates the training corpora of §4: a classifier set
// of matrix pairs spanning 1–99 % sparsity labelled with the best Misam
// design (the paper's 6,219-matrix set), and a larger latency-predictor
// set of (features, design) → latency records (the paper's 19,000-matrix
// set). SuiteSparse-style highly sparse matrices are synthesized with the
// generator families of internal/sparse; moderately sparse and dense
// matrices mimic pruned DNN weights. Sizes scale with a count parameter
// so unit tests stay fast while the benchmark harness can regenerate
// paper-scale corpora.
package dataset

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"misam/internal/energy"
	"misam/internal/features"
	"misam/internal/memo"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// Pair is one SpGEMM workload: the two operands plus a family tag for
// diagnostics.
type Pair struct {
	Family string
	A, B   *sparse.CSR
}

// Sample is one labelled training record.
type Sample struct {
	Pair     Pair
	Features features.Vector
	// LatencySec and EnergyJ hold each design's simulated latency and
	// energy.
	LatencySec [sim.NumDesigns]float64
	EnergyJ    [sim.NumDesigns]float64
	// Best is the argmin-latency design — the default classification
	// label (see Corpus.LabelsFor for other objectives).
	Best sim.DesignID
	// Pruned marks designs labelled by the pruned slow tier with a lower
	// bound instead of an exact simulation (Best is still the exact
	// argmin). Pruned entries carry zero EnergyJ and are excluded from the
	// latency-regressor corpus by GenerateLatency.
	Pruned [sim.NumDesigns]bool
}

// BestFor returns the optimal design under a weighted latency/energy
// objective (§3.1: "users [can] prioritize performance metrics ...
// optimize exclusively for performance, prioritize energy efficiency, or
// apply a weighted combination"). Each metric is normalized by its
// per-sample minimum so the weights are scale-free.
func (s *Sample) BestFor(latencyWeight, energyWeight float64) sim.DesignID {
	minLat, minEn := s.LatencySec[0], s.EnergyJ[0]
	for _, id := range sim.AllDesigns {
		if s.LatencySec[id] < minLat {
			minLat = s.LatencySec[id]
		}
		if s.EnergyJ[id] < minEn {
			minEn = s.EnergyJ[id]
		}
	}
	best, bestCost := sim.Design1, 0.0
	for i, id := range sim.AllDesigns {
		cost := 0.0
		if minLat > 0 {
			cost += latencyWeight * s.LatencySec[id] / minLat
		}
		if minEn > 0 {
			cost += energyWeight * s.EnergyJ[id] / minEn
		}
		if i == 0 || cost < bestCost {
			best, bestCost = id, cost
		}
	}
	return best
}

// Corpus is a labelled training set.
type Corpus struct {
	Samples []Sample
}

// X returns the feature matrix.
func (c *Corpus) X() [][]float64 {
	out := make([][]float64, len(c.Samples))
	for i := range c.Samples {
		out[i] = c.Samples[i].Features.Slice()
	}
	return out
}

// Labels returns the best-design labels under the pure-latency objective.
func (c *Corpus) Labels() []int {
	out := make([]int, len(c.Samples))
	for i := range c.Samples {
		out[i] = int(c.Samples[i].Best)
	}
	return out
}

// LabelsFor returns the best-design labels under a weighted
// latency/energy objective.
func (c *Corpus) LabelsFor(latencyWeight, energyWeight float64) []int {
	out := make([]int, len(c.Samples))
	for i := range c.Samples {
		out[i] = int(c.Samples[i].BestFor(latencyWeight, energyWeight))
	}
	return out
}

// ClassCounts tallies labels per design.
func (c *Corpus) ClassCounts() [sim.NumDesigns]int {
	var out [sim.NumDesigns]int
	for _, s := range c.Samples {
		out[s.Best]++
	}
	return out
}

// RandomPair draws one workload from the mixture the paper trains on.
// maxDim bounds matrix dimensions (training-time simulation cost).
func RandomPair(rng *rand.Rand, maxDim int) Pair {
	if maxDim < 64 {
		maxDim = 64
	}
	switch rng.Intn(9) {
	case 0:
		// DNN layer: moderately sparse or dense A × dense-ish B with the
		// characteristic power-of-two widths (§3.1). Layer dims run up to
		// 2× the nominal bound: im2col weight matrices (e.g. 512×4608)
		// outgrow the square workloads.
		dims := []int{128, 256, 512, 1024, 2048, 4096}
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		m, k, n = capDim(m, 2*maxDim), capDim(k, 2*maxDim), capDim(n, maxDim)
		aDens := 0.05 + rng.Float64()*0.45
		a := sparse.DNNPruned(rng, m, k, aDens, rng.Intn(2) == 0, 4)
		var b *sparse.CSR
		if rng.Intn(2) == 0 {
			b = sparse.DenseRandom(rng, k, n)
		} else {
			b = sparse.DNNPruned(rng, k, n, 0.1+rng.Float64()*0.5, true, 4)
		}
		return Pair{Family: "dnn", A: a, B: b}
	case 1:
		// Scientific: banded/FEM-like A, highly sparse or dense B.
		n := dimBetween(rng, 256, maxDim)
		a := sparse.Banded(rng, n, n, 1+rng.Intn(8), 0.3+0.7*rng.Float64())
		b := scientificB(rng, n, maxDim)
		return Pair{Family: "banded", A: a, B: b}
	case 2:
		// Graph: power-law A, often squared (A×A graph analytics).
		n := dimBetween(rng, 256, maxDim)
		nnz := n * (2 + rng.Intn(8))
		a := sparse.PowerLaw(rng, n, n, nnz, 1.5+rng.Float64())
		if rng.Intn(2) == 0 {
			return Pair{Family: "graph-sq", A: a, B: a}
		}
		return Pair{Family: "graph", A: a, B: scientificB(rng, n, maxDim)}
	case 3:
		// Uniform random across the full 1–99 % sparsity span.
		m := dimBetween(rng, 64, maxDim)
		k := dimBetween(rng, 64, maxDim)
		n := dimBetween(rng, 64, maxDim)
		a := sparse.Uniform(rng, m, k, 0.01+rng.Float64()*0.98)
		b := sparse.Uniform(rng, k, n, 0.01+rng.Float64()*0.98)
		return Pair{Family: "uniform", A: a, B: b}
	case 4:
		// Highly sparse uniform pair — Design 4 territory.
		m := dimBetween(rng, 512, maxDim)
		k := dimBetween(rng, 512, maxDim)
		n := dimBetween(rng, 512, maxDim)
		a := sparse.Uniform(rng, m, k, 0.0005+rng.Float64()*0.01)
		b := sparse.Uniform(rng, k, n, 0.0005+rng.Float64()*0.01)
		return Pair{Family: "hs", A: a, B: b}
	case 5:
		// Imbalanced A — Design 3 territory.
		n := dimBetween(rng, 512, maxDim)
		nnz := n * (4 + rng.Intn(10))
		a := sparse.Imbalanced(rng, n, n, nnz, 0.005+0.02*rng.Float64(), 0.6+0.35*rng.Float64())
		b := sparse.DenseRandom(rng, n, capDim(8<<rng.Intn(4), maxDim))
		return Pair{Family: "imbalanced", A: a, B: b}
	case 6:
		// Small uniformly sparse A × narrow dense B — the regime where
		// Design 1's compact schedule wins (§3.2.2).
		n := dimBetween(rng, 128, maxDim/2+128)
		a := sparse.Uniform(rng, n, n, 0.001+rng.Float64()*0.01)
		b := sparse.DenseRandom(rng, n, 4+rng.Intn(13))
		return Pair{Family: "tiny-sparse", A: a, B: b}
	case 7:
		// Wide streaming tile (§3.3): a row slice of a much larger matrix,
		// so rows ≪ cols. This is the shape the tile-level engine sees.
		rows := dimBetween(rng, 256, maxDim*2)
		cols := rows * (4 + rng.Intn(13))
		var a *sparse.CSR
		if rng.Intn(2) == 0 {
			a = sparse.PowerLaw(rng, rows, cols, rows*(2+rng.Intn(10)), 1.5+rng.Float64())
		} else {
			a = sparse.Uniform(rng, rows, cols, float64(2+rng.Intn(8))/float64(cols))
		}
		var b *sparse.CSR
		if rng.Intn(2) == 0 {
			b = sparse.DenseRandom(rng, cols, 8<<rng.Intn(3))
		} else {
			b = sparse.Uniform(rng, cols, 128<<rng.Intn(2), 0.05+rng.Float64()*0.4)
		}
		return Pair{Family: "tile", A: a, B: b}
	default:
		// Large-dimension sparse matrices (the Figure 8 streaming regime):
		// dimensions log-uniform from 2× to ~128× the DNN sizes, bounded
		// nnz so labelling stays affordable.
		n := int(float64(maxDim*2) * math.Pow(2, rng.Float64()*6))
		deg := 2 + rng.Intn(10)
		var a *sparse.CSR
		switch rng.Intn(3) {
		case 0:
			a = sparse.Banded(rng, n, n, (deg+1)/2, 0.8)
		case 1:
			a = sparse.PowerLaw(rng, n, n, n*deg, 1.6+rng.Float64())
		default:
			a = sparse.Uniform(rng, n, n, float64(deg)/float64(n))
		}
		var b *sparse.CSR
		switch rng.Intn(4) {
		case 0:
			b = sparse.DenseRandom(rng, n, 8<<rng.Intn(4))
		case 1:
			b = sparse.Uniform(rng, n, n, float64(2+rng.Intn(6))/float64(n))
		case 2:
			// Moderately sparse multi-RHS block (the cg-style streaming
			// workloads of Figure 8).
			b = sparse.Uniform(rng, n, 128<<rng.Intn(3), 0.02+rng.Float64()*0.5)
		default:
			b = a
		}
		return Pair{Family: "large", A: a, B: b}
	}
}

// dimBetween draws a dimension uniformly in [lo, hi], tolerating hi < lo
// (small MaxDim configurations).
func dimBetween(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func capDim(d, maxDim int) int {
	if d > maxDim {
		return maxDim
	}
	return d
}

// scientificB draws the B operand for scientific/graph workloads: dense
// multi-RHS block, moderately sparse, or highly sparse.
func scientificB(rng *rand.Rand, k, maxDim int) *sparse.CSR {
	switch rng.Intn(3) {
	case 0:
		return sparse.DenseRandom(rng, k, capDim(32<<rng.Intn(3), maxDim))
	case 1:
		return sparse.Uniform(rng, k, capDim(128<<rng.Intn(3), maxDim), 0.1+rng.Float64()*0.5)
	default:
		return sparse.Uniform(rng, k, k, 0.0005+rng.Float64()*0.005)
	}
}

// Label simulates all four designs on a pair and returns the sample. The
// designs share one sim.Workload precompute, so the pair's CSC form, B
// row counts, tilings and element bins are derived once rather than per
// design — this is the hot kernel of corpus generation (one call per
// training sample).
func Label(p Pair) (Sample, error) {
	return LabelCtx(context.Background(), p)
}

// LabelCtx is Label under a context: cancellation aborts the four design
// simulations mid-tile-pool and returns ctx.Err().
func LabelCtx(ctx context.Context, p Pair) (Sample, error) {
	return labelCtxOpts(ctx, p, LabelOptions{})
}

// LabelOptions tunes batch labelling.
type LabelOptions struct {
	// Pruned labels through the pruned slow tier (coarse-then-exact +
	// early-exit): Best and the winner's latency are still exact, but
	// losing designs the pruner eliminated carry lower-bound latencies,
	// marked in Sample.Pruned, and zero energy. Pruned corpora are valid
	// for classifier training (the argmin label is exact) but weighted
	// latency/energy objectives and per-design latency regression need
	// the exact tier for the pruned entries.
	Pruned bool
}

func labelCtxOpts(ctx context.Context, p Pair, opt LabelOptions) (Sample, error) {
	w, err := sim.NewWorkload(p.A, p.B)
	if err != nil {
		return Sample{}, fmt.Errorf("dataset: labelling %s: %w", p.Family, err)
	}
	var results [sim.NumDesigns]sim.Result
	if opt.Pruned {
		results, err = w.SimulateAllOpts(ctx, sim.PruneOptions())
	} else {
		results, err = w.SimulateAllCtx(ctx)
	}
	if err != nil {
		return Sample{}, fmt.Errorf("dataset: labelling %s: %w", p.Family, err)
	}
	s := Sample{Pair: p, Features: features.Extract(p.A, p.B), Best: sim.BestDesign(results)}
	for _, id := range sim.AllDesigns {
		s.LatencySec[id] = results[id].Seconds
		s.Pruned[id] = results[id].Pruned
		if !results[id].Pruned {
			s.EnergyJ[id] = energy.FPGAEnergy(results[id])
		}
	}
	return s, nil
}

// LabelAll labels a batch of pairs, fanning the per-pair work out across
// GOMAXPROCS workers. Results keep the input order; the first error (in
// input order) wins. Corpus regeneration and the benchmark harness use it
// to label paper-scale pair sets without serializing on Label. ctx
// cancellation stops the workers between pairs (and aborts in-flight
// simulations) and returns ctx.Err().
//
// Identical operand pairs are deduplicated by content fingerprint before
// any simulation runs: each distinct pair is labelled exactly once and
// the sample replicated to its duplicates (keeping each duplicate's own
// Pair metadata). Corpora drawn from real workload traces repeat the
// same weight matrix across many records, so the saving is proportional
// to the repetition rate.
func LabelAll(ctx context.Context, pairs []Pair) ([]Sample, error) {
	return LabelAllOpts(ctx, pairs, LabelOptions{})
}

// LabelAllOpts is LabelAll with explicit labelling options; the zero
// LabelOptions value is the exact tier, bit-identical to LabelAll.
func LabelAllOpts(ctx context.Context, pairs []Pair, opt LabelOptions) ([]Sample, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Group by operand content; reps holds the first index of each
	// distinct pair, repOf maps every index to its representative.
	reps := make([]int, 0, len(pairs))
	repOf := make([]int, len(pairs))
	firstByKey := make(map[memo.Key]int, len(pairs))
	for i, p := range pairs {
		k := memo.PairKey(p.A.Fingerprint(), p.B.Fingerprint())
		if j, ok := firstByKey[k]; ok {
			repOf[i] = j
			continue
		}
		firstByKey[k] = i
		repOf[i] = i
		reps = append(reps, i)
	}

	samples := make([]Sample, len(pairs))
	errs := make([]error, len(pairs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(reps) {
		workers = len(reps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := int64(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				r := int(atomic.AddInt64(&next, 1)) - 1
				if r >= len(reps) {
					return
				}
				i := reps[r]
				samples[i], errs[i] = labelCtxOpts(ctx, pairs[i], opt)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range pairs {
		if err := errs[repOf[i]]; err != nil {
			return nil, err
		}
	}
	for i, j := range repOf {
		if i == j {
			continue
		}
		samples[i] = samples[j]
		samples[i].Pair = pairs[i]
	}
	return samples, nil
}

// GenerateClassifier builds a labelled corpus of n samples. maxDim bounds
// matrix dimensions (2048 reproduces the paper's regime; tests pass
// smaller values for speed). Generation and labelling fan out across
// GOMAXPROCS workers; results are deterministic for a given rng seed
// because each sample derives its own seed from the master stream before
// the fan-out.
func GenerateClassifier(rng *rand.Rand, n, maxDim int) (*Corpus, error) {
	// Draw per-sample seeds serially so scheduling cannot perturb them.
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	samples := make([]Sample, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := int64(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				local := rand.New(rand.NewSource(seeds[i]))
				samples[i], errs[i] = Label(RandomPair(local, maxDim))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Corpus{Samples: samples}, nil
}

// LatencyRecordFeatures returns the latency predictor's input encoding:
// the matrix features followed by a one-hot of the design whose latency
// is being predicted — "the expected latency for the predicted design,
// based on the matrix features and the current FPGA configuration" (§3.3).
func LatencyRecordFeatures(v features.Vector, id sim.DesignID) []float64 {
	out := make([]float64, features.NumFeatures+int(sim.NumDesigns))
	copy(out, v.Slice())
	out[features.NumFeatures+int(id)] = 1
	return out
}

// LatencyTarget converts a simulated latency to the regression target:
// log10 of milliseconds, compressing the several-decade dynamic range.
func LatencyTarget(seconds float64) float64 {
	ms := seconds * 1e3
	if ms < 1e-9 {
		ms = 1e-9
	}
	return math.Log10(ms)
}

// LatencyFromTarget inverts LatencyTarget back to seconds.
func LatencyFromTarget(t float64) float64 {
	return math.Pow(10, t) / 1e3
}

// GenerateLatency builds the latency-predictor training set from a
// classifier corpus: one record per (sample, design). Entries a pruned
// labelling pass left as lower bounds are skipped — a regressor fit to
// bounds would systematically underpredict the designs the pruner
// eliminates most often.
func GenerateLatency(c *Corpus) (x [][]float64, y []float64) {
	for _, s := range c.Samples {
		for _, id := range sim.AllDesigns {
			if s.Pruned[id] {
				continue
			}
			x = append(x, LatencyRecordFeatures(s.Features, id))
			y = append(y, LatencyTarget(s.LatencySec[id]))
		}
	}
	return x, y
}
