package dataset

import (
	"context"
	"math/rand"
	"testing"

	"misam/internal/sim"
	"misam/internal/sparse"
)

// TestLabelAllOptsPruned: pruned labelling keeps the classifier label and
// the winner's exact latency while marking the eliminated losers, whose
// entries carry a valid lower bound (above the winner, at or below the
// exact total) and no energy figure; GenerateLatency then skips exactly
// those entries.
func TestLabelAllOptsPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	pairs := []Pair{
		{Family: "ms-dense", A: sparse.Uniform(rng, 300, 300, 0.03), B: sparse.DenseRandom(rng, 300, 64)},
		{Family: "hs-hs", A: sparse.Uniform(rng, 400, 400, 0.002), B: sparse.Uniform(rng, 400, 400, 0.002)},
		{Family: "graph", A: sparse.PowerLaw(rng, 350, 350, 2800, 1.7), B: sparse.Uniform(rng, 350, 96, 0.08)},
		{Family: "banded", A: sparse.Banded(rng, 320, 320, 3, 0.9), B: sparse.DenseRandom(rng, 320, 32)},
		{Family: "tiny", A: sparse.Uniform(rng, 128, 128, 0.01), B: sparse.DenseRandom(rng, 128, 8)},
		{Family: "imb", A: sparse.Imbalanced(rng, 384, 384, 3000, 0.01, 0.8), B: sparse.DenseRandom(rng, 384, 16)},
	}
	exact, err := LabelAll(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := LabelAllOpts(context.Background(), pairs, LabelOptions{Pruned: true})
	if err != nil {
		t.Fatal(err)
	}

	prunedEntries := 0
	for i := range pairs {
		e, p := exact[i], pruned[i]
		if p.Best != e.Best {
			t.Fatalf("pair %d: pruned label %v != exact %v", i, p.Best, e.Best)
		}
		if p.Pruned[p.Best] {
			t.Fatalf("pair %d: winner marked pruned", i)
		}
		if p.LatencySec[p.Best] != e.LatencySec[e.Best] {
			t.Fatalf("pair %d: winner latency %.6g != exact %.6g", i, p.LatencySec[p.Best], e.LatencySec[e.Best])
		}
		if e.Pruned != [sim.NumDesigns]bool{} {
			t.Fatalf("pair %d: exact labelling marked designs pruned: %v", i, e.Pruned)
		}
		for _, id := range sim.AllDesigns {
			if !p.Pruned[id] {
				if p.LatencySec[id] != e.LatencySec[id] || p.EnergyJ[id] != e.EnergyJ[id] {
					t.Fatalf("pair %d design %v: non-pruned entry diverged from exact", i, id)
				}
				continue
			}
			prunedEntries++
			if p.LatencySec[id] > e.LatencySec[id] {
				t.Fatalf("pair %d design %v: bound %.6g exceeds exact %.6g", i, id, p.LatencySec[id], e.LatencySec[id])
			}
			if p.LatencySec[id] <= p.LatencySec[p.Best] {
				t.Fatalf("pair %d design %v: pruned bound %.6g not strictly worse than winner %.6g",
					i, id, p.LatencySec[id], p.LatencySec[p.Best])
			}
			if p.EnergyJ[id] != 0 {
				t.Fatalf("pair %d design %v: pruned entry carries energy %.6g", i, id, p.EnergyJ[id])
			}
		}
	}

	x, y := GenerateLatency(&Corpus{Samples: pruned})
	if want := len(pairs)*int(sim.NumDesigns) - prunedEntries; len(x) != want || len(y) != want {
		t.Fatalf("latency corpus has %d records, want %d (= %d entries minus %d pruned)",
			len(x), want, len(pairs)*int(sim.NumDesigns), prunedEntries)
	}
}

// TestLabelAllOptsZeroValueMatchesLabelAll pins that the zero LabelOptions
// is the exact path, bit for bit.
func TestLabelAllOptsZeroValueMatchesLabelAll(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := sparse.Uniform(rng, 200, 200, 0.02)
	b := sparse.DenseRandom(rng, 200, 32)
	pairs := []Pair{{Family: "t", A: a, B: b}}
	s1, err := LabelAll(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LabelAllOpts(context.Background(), pairs, LabelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s1[0].Best != s2[0].Best || s1[0].LatencySec != s2[0].LatencySec || s1[0].EnergyJ != s2[0].EnergyJ {
		t.Fatalf("zero LabelOptions diverged from LabelAll:\n%+v\n%+v", s1[0], s2[0])
	}
}
