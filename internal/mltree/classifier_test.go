package mltree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthClassification builds a 2-feature, k-class dataset with axis-aligned
// class regions plus label noise.
func synthClassification(rng *rand.Rand, n, k int, noise float64) (x [][]float64, y []int) {
	for i := 0; i < n; i++ {
		f0 := rng.Float64()
		f1 := rng.Float64()
		c := int(f0*float64(k)) % k
		if rng.Float64() < noise {
			c = rng.Intn(k)
		}
		x = append(x, []float64{f0, f1})
		y = append(y, c)
	}
	return x, y
}

func TestClassifierLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthClassification(rng, 600, 3, 0)
	cls, err := TrainClassifier(x, y, 3, nil, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(cls.PredictBatch(x), y); acc < 0.98 {
		t.Errorf("training accuracy %.3f, want >= 0.98 on separable data", acc)
	}
}

func TestClassifierGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := synthClassification(rng, 1000, 4, 0.05)
	train, test := StratifiedSplit(y, 4, 0.7, rng)
	cls, err := TrainClassifier(gather(x, train), gatherInts(y, train), 4, nil, Config{MaxDepth: 6, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(cls.PredictBatch(gather(x, test)), gatherInts(y, test))
	if acc < 0.85 {
		t.Errorf("test accuracy %.3f, want >= 0.85", acc)
	}
}

func TestClassifierInputValidation(t *testing.T) {
	if _, err := TrainClassifier(nil, nil, 2, nil, Config{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := TrainClassifier([][]float64{{1}}, []int{0, 1}, 2, nil, Config{}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := TrainClassifier([][]float64{{1}, {2, 3}}, []int{0, 1}, 2, nil, Config{}); err == nil {
		t.Error("accepted ragged features")
	}
	if _, err := TrainClassifier([][]float64{{1}, {2}}, []int{0, 5}, 2, nil, Config{}); err == nil {
		t.Error("accepted out-of-range label")
	}
	if _, err := TrainClassifier([][]float64{{math.NaN()}, {2}}, []int{0, 1}, 2, nil, Config{}); err == nil {
		t.Error("accepted NaN feature")
	}
	if _, err := TrainClassifier([][]float64{{1}, {2}}, []int{0, 1}, 1, nil, Config{}); err == nil {
		t.Error("accepted single-class problem")
	}
	if _, err := TrainClassifier([][]float64{{1}, {2}}, []int{0, 1}, 2, []float64{1}, Config{}); err == nil {
		t.Error("accepted wrong-length class weights")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthClassification(rng, 500, 4, 0.2)
	for _, d := range []int{1, 2, 3, 5} {
		cls, err := TrainClassifier(x, y, 4, nil, Config{MaxDepth: d})
		if err != nil {
			t.Fatal(err)
		}
		if got := cls.Depth(); got > d+1 {
			t.Errorf("MaxDepth %d produced depth %d", d, got)
		}
	}
}

func TestBalancedWeights(t *testing.T) {
	y := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1} // 9:1 imbalance
	w := BalancedWeights(y, 2)
	if w[1] <= w[0] {
		t.Errorf("minority weight %v not above majority %v", w[1], w[0])
	}
	if math.Abs(w[1]/w[0]-9) > 1e-9 {
		t.Errorf("weight ratio = %v, want 9", w[1]/w[0])
	}
	// Unseen class gets zero weight rather than Inf.
	w3 := BalancedWeights(y, 3)
	if w3[2] != 0 {
		t.Errorf("absent class weight = %v, want 0", w3[2])
	}
}

func TestClassWeightingImprovesMinorityRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Overlapping classes with 20:1 imbalance: unweighted trees can afford
	// to ignore the minority class.
	var x [][]float64
	var y []int
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64()
		x = append(x, []float64{v, rng.Float64()})
		y = append(y, 0)
	}
	for i := 0; i < 100; i++ {
		v := rng.NormFloat64() + 1.0 // heavy overlap
		x = append(x, []float64{v, rng.Float64()})
		y = append(y, 1)
	}
	cfg := Config{MaxDepth: 3, MinSamplesLeaf: 20}
	plain, err := TrainClassifier(x, y, 2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := TrainClassifier(x, y, 2, BalancedWeights(y, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	recall := func(c *Classifier) float64 {
		hit, total := 0, 0
		for i := range x {
			if y[i] == 1 {
				total++
				if c.Predict(x[i]) == 1 {
					hit++
				}
			}
		}
		return float64(hit) / float64(total)
	}
	if rw, rp := recall(weighted), recall(plain); rw <= rp {
		t.Errorf("weighted minority recall %.3f not above unweighted %.3f", rw, rp)
	}
}

func TestFeatureImportanceIdentifiesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Feature 1 carries all signal; features 0 and 2 are noise.
	var x [][]float64
	var y []int
	for i := 0; i < 800; i++ {
		s := rng.Float64()
		x = append(x, []float64{rng.Float64(), s, rng.Float64()})
		if s > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	cls, err := TrainClassifier(x, y, 2, nil, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	imp := cls.Importance
	if imp[1] < 0.9 {
		t.Errorf("signal feature importance %.3f, want >= 0.9", imp[1])
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
}

func TestFeatureSubsetRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		s := rng.Float64()
		x = append(x, []float64{s, rng.Float64()})
		if s > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	// Restrict to the noise feature only: the tree cannot use feature 0.
	cls, err := TrainClassifier(x, y, 2, nil, Config{MaxDepth: 6, Features: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Importance[0] != 0 {
		t.Errorf("restricted feature used anyway: importance %v", cls.Importance[0])
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := synthClassification(rng, 300, 3, 0.1)
	cls, err := TrainClassifier(x, y, 3, nil, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := cls.PredictProba(x[0])
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Errorf("negative probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestPropertyPredictionMatchesTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := synthClassification(rng, 500, 3, 0.1)
	cls, err := TrainClassifier(x, y, 3, nil, Config{MaxDepth: 7})
	if err != nil {
		t.Fatal(err)
	}
	cc := cls.Compile()
	f := func(a, b float64) bool {
		pt := []float64{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))}
		return cls.Predict(pt) == cc.PredictClass(pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinImpurityDecreaseStopsGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := synthClassification(rng, 400, 2, 0.4)
	loose, _ := TrainClassifier(x, y, 2, nil, Config{})
	strict, _ := TrainClassifier(x, y, 2, nil, Config{MinImpurityDecrease: 0.1})
	if strict.NumNodes() >= loose.NumNodes() {
		t.Errorf("strict tree (%d nodes) not smaller than loose (%d)", strict.NumNodes(), loose.NumNodes())
	}
}
