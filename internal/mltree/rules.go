package mltree

import (
	"fmt"
	"strings"
)

// Rule extraction: §6.3 notes that "insights from trained models can
// inform the design of new heuristics, bridging the gap between manual
// rule design and adaptive learning-based optimization". Rules renders
// the learned tree as a nested if/else over named features so a human
// can read the decision boundaries the model found.

// Rules renders the classifier as indented if/else text. featureNames
// maps feature indices to names (nil falls back to f<i>); classNames
// maps labels (nil falls back to class <i>).
func (c *Classifier) Rules(featureNames, classNames []string) string {
	var sb strings.Builder
	renderRules(&sb, c.Root, 0, featureNames, func(n *Node) string {
		name := fmt.Sprintf("class %d", n.Label)
		if classNames != nil && n.Label < len(classNames) {
			name = classNames[n.Label]
		}
		conf := 0.0
		if n.Label < len(n.Probs) {
			conf = n.Probs[n.Label]
		}
		return fmt.Sprintf("→ %s (%.0f%% of %.0f samples)", name, conf*100, n.Samples)
	})
	return sb.String()
}

// Rules renders the regressor as indented if/else text with leaf values.
func (r *Regressor) Rules(featureNames []string) string {
	var sb strings.Builder
	renderRules(&sb, r.Root, 0, featureNames, func(n *Node) string {
		return fmt.Sprintf("→ %.4g (%.0f samples)", n.Value, n.Samples)
	})
	return sb.String()
}

func renderRules(sb *strings.Builder, n *Node, depth int, names []string, leaf func(*Node) string) {
	indent := strings.Repeat("  ", depth)
	if n.Leaf {
		fmt.Fprintf(sb, "%s%s\n", indent, leaf(n))
		return
	}
	fname := fmt.Sprintf("f%d", n.Feature)
	if names != nil && n.Feature < len(names) {
		fname = names[n.Feature]
	}
	fmt.Fprintf(sb, "%sif %s <= %.6g:\n", indent, fname, n.Threshold)
	renderRules(sb, n.Left, depth+1, names, leaf)
	fmt.Fprintf(sb, "%selse:\n", indent)
	renderRules(sb, n.Right, depth+1, names, leaf)
}

// TopSplits lists the first maxDepth levels of splits in breadth-first
// order — the coarse heuristic a human would transcribe.
func (c *Classifier) TopSplits(featureNames []string, maxDepth int) []string {
	var out []string
	type item struct {
		n     *Node
		depth int
	}
	queue := []item{{c.Root, 1}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.n == nil || it.n.Leaf || it.depth > maxDepth {
			continue
		}
		fname := fmt.Sprintf("f%d", it.n.Feature)
		if featureNames != nil && it.n.Feature < len(featureNames) {
			fname = featureNames[it.n.Feature]
		}
		out = append(out, fmt.Sprintf("level %d: %s <= %.6g", it.depth, fname, it.n.Threshold))
		queue = append(queue, item{it.n.Left, it.depth + 1}, item{it.n.Right, it.depth + 1})
	}
	return out
}
