package mltree

// Regressor is a CART regression tree minimizing mean squared error; it
// backs the reconfiguration engine's latency predictor (§3.3, Figure 9).
type Regressor struct {
	Root        *Node
	NumFeatures int
	Importance  []float64 // normalized variance-reduction per feature
}

// TrainRegressor grows an MSE CART tree on (x, y).
func TrainRegressor(x [][]float64, y []float64, cfg Config) (*Regressor, error) {
	numFeatures, err := checkDataset(x, len(y))
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	reg := &Regressor{NumFeatures: numFeatures, Importance: make([]float64, numFeatures)}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	b := &regressorBuilder{x: x, y: y, cfg: cfg, features: featureSet(cfg, numFeatures), reg: reg}
	reg.Root = b.grow(idx, 1)
	normalize(reg.Importance)
	return reg, nil
}

type regressorBuilder struct {
	x        [][]float64
	y        []float64
	cfg      Config
	features []int
	reg      *Regressor
}

// mse returns the mean, total count and variance (MSE around the mean)
// over idx.
func (b *regressorBuilder) mse(idx []int) (mean, total, variance float64) {
	for _, i := range idx {
		mean += b.y[i]
	}
	total = float64(len(idx))
	mean /= total
	for _, i := range idx {
		d := b.y[i] - mean
		variance += d * d
	}
	variance /= total
	return mean, total, variance
}

func (b *regressorBuilder) grow(idx []int, depth int) *Node {
	mean, total, variance := b.mse(idx)
	if variance == 0 || total < b.cfg.MinSamplesSplit || (b.cfg.MaxDepth > 0 && depth > b.cfg.MaxDepth) {
		return &Node{Leaf: true, Value: mean, Samples: total, Impurity: variance, Feature: -1}
	}

	bestDecrease := b.cfg.MinImpurityDecrease
	bestFeature, bestThreshold := -1, 0.0
	for _, f := range b.features {
		sortByFeature(idx, b.x, f)
		// Incremental sums for variance of the left/right partitions.
		var lSum, lSumSq float64
		var tSum, tSumSq float64
		for _, i := range idx {
			tSum += b.y[i]
			tSumSq += b.y[i] * b.y[i]
		}
		for i := 0; i < len(idx)-1; i++ {
			v := b.y[idx[i]]
			lSum += v
			lSumSq += v * v
			xi, xj := b.x[idx[i]][f], b.x[idx[i+1]][f]
			if xi == xj {
				continue
			}
			nl := float64(i + 1)
			nr := total - nl
			if nl < b.cfg.MinSamplesLeaf || nr < b.cfg.MinSamplesLeaf {
				continue
			}
			varL := lSumSq/nl - (lSum/nl)*(lSum/nl)
			rSum := tSum - lSum
			rSumSq := tSumSq - lSumSq
			varR := rSumSq/nr - (rSum/nr)*(rSum/nr)
			decrease := variance - (nl*varL+nr*varR)/total
			if decrease > bestDecrease {
				bestDecrease = decrease
				bestFeature = f
				bestThreshold = (xi + xj) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &Node{Leaf: true, Value: mean, Samples: total, Impurity: variance, Feature: -1}
	}
	var li, ri []int
	for _, i := range idx {
		if b.x[i][bestFeature] <= bestThreshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &Node{Leaf: true, Value: mean, Samples: total, Impurity: variance, Feature: -1}
	}
	accumulateImportance(b.reg.Importance, bestFeature, total*bestDecrease)
	n := &Node{Feature: bestFeature, Threshold: bestThreshold, Samples: total, Impurity: variance}
	n.Left = b.grow(li, depth+1)
	n.Right = b.grow(ri, depth+1)
	return n
}

// Predict returns the regression estimate for x.
func (r *Regressor) Predict(x []float64) float64 { return r.Root.route(x).Value }

// PredictBatch evaluates each row of x.
func (r *Regressor) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = r.Predict(row)
	}
	return out
}

// Depth reports the tree height.
func (r *Regressor) Depth() int { return r.Root.depth() }

// NumNodes reports the total node count.
func (r *Regressor) NumNodes() int { return r.Root.count() }
