package mltree

import "math"

// Accuracy reports the fraction of predictions equal to the truth.
func Accuracy(pred, truth []int) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// ConfusionMatrix returns a numClasses×numClasses matrix m where
// m[predicted][actual] counts samples, matching the orientation of the
// paper's Table 5 ("Predicted/Actual").
func ConfusionMatrix(pred, truth []int, numClasses int) [][]int {
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i := range pred {
		m[pred[i]][truth[i]]++
	}
	return m
}

// MAE reports mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred))
}

// R2 reports the coefficient of determination of pred against truth
// (1 = perfect; 0 = no better than the mean; can be negative).
func R2(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	mean := 0.0
	for _, t := range truth {
		mean += t
	}
	mean /= float64(len(truth))
	ssRes, ssTot := 0.0, 0.0
	for i := range truth {
		dr := truth[i] - pred[i]
		dt := truth[i] - mean
		ssRes += dr * dr
		ssTot += dt * dt
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
