package mltree

import (
	"fmt"
	"math/rand"
)

// Split shuffles indices 0..n-1 and splits them into a training and a
// held-out set with the given training fraction (the paper's 70/30 split).
func Split(n int, trainFrac float64, rng *rand.Rand) (train, test []int) {
	idx := rng.Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut < 1 {
		cut = 1
	}
	if cut > n {
		cut = n
	}
	return idx[:cut], idx[cut:]
}

// StratifiedSplit splits per class so both sides preserve the class mix.
func StratifiedSplit(y []int, numClasses int, trainFrac float64, rng *rand.Rand) (train, test []int) {
	byClass := make([][]int, numClasses)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	for _, members := range byClass {
		rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		cut := int(float64(len(members)) * trainFrac)
		train = append(train, members[:cut]...)
		test = append(test, members[cut:]...)
	}
	rng.Shuffle(len(train), func(i, j int) { train[i], train[j] = train[j], train[i] })
	rng.Shuffle(len(test), func(i, j int) { test[i], test[j] = test[j], test[i] })
	return train, test
}

// KFold partitions indices 0..n-1 into k shuffled folds of near-equal size.
func KFold(n, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	idx := rng.Perm(n)
	folds := make([][]int, k)
	for i, x := range idx {
		folds[i%k] = append(folds[i%k], x)
	}
	return folds
}

// gather selects rows of x / elements of y by index.
func gather(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

func gatherInts(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

func gatherFloats(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// CrossValidateClassifier runs k-fold cross-validation (the paper's
// 10-fold protocol) and returns the per-fold accuracies. balanced selects
// inverse-frequency class weighting on each training fold.
func CrossValidateClassifier(x [][]float64, y []int, numClasses int, balanced bool, cfg Config, k int, rng *rand.Rand) ([]float64, error) {
	folds := KFold(len(x), k, rng)
	accs := make([]float64, 0, len(folds))
	for f := range folds {
		var trainIdx []int
		for g, fold := range folds {
			if g != f {
				trainIdx = append(trainIdx, fold...)
			}
		}
		trX, trY := gather(x, trainIdx), gatherInts(y, trainIdx)
		teX, teY := gather(x, folds[f]), gatherInts(y, folds[f])
		var weights []float64
		if balanced {
			weights = BalancedWeights(trY, numClasses)
		}
		cls, err := TrainClassifier(trX, trY, numClasses, weights, cfg)
		if err != nil {
			return nil, fmt.Errorf("mltree: fold %d: %w", f, err)
		}
		accs = append(accs, Accuracy(cls.PredictBatch(teX), teY))
	}
	return accs, nil
}

// CrossValidateRegressor runs k-fold cross-validation and returns per-fold
// (MAE, R²) pairs.
func CrossValidateRegressor(x [][]float64, y []float64, cfg Config, k int, rng *rand.Rand) (maes, r2s []float64, err error) {
	folds := KFold(len(x), k, rng)
	for f := range folds {
		var trainIdx []int
		for g, fold := range folds {
			if g != f {
				trainIdx = append(trainIdx, fold...)
			}
		}
		trX, trY := gather(x, trainIdx), gatherFloats(y, trainIdx)
		teX, teY := gather(x, folds[f]), gatherFloats(y, folds[f])
		reg, err := TrainRegressor(trX, trY, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("mltree: fold %d: %w", f, err)
		}
		pred := reg.PredictBatch(teX)
		maes = append(maes, MAE(pred, teY))
		r2s = append(r2s, R2(pred, teY))
	}
	return maes, r2s, nil
}
