package mltree

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization for trained models. The paper stresses the deployed
// decision tree needs only ~6 KB of storage; SizeBytes lets callers
// verify their trained model stays in that regime.

// WriteClassifier gob-encodes c to w.
func WriteClassifier(w io.Writer, c *Classifier) error {
	return gob.NewEncoder(w).Encode(c)
}

// ReadClassifier decodes a classifier written by WriteClassifier.
func ReadClassifier(r io.Reader) (*Classifier, error) {
	var c Classifier
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("mltree: decode classifier: %w", err)
	}
	if c.Root == nil {
		return nil, fmt.Errorf("mltree: decoded classifier has no tree")
	}
	return &c, nil
}

// WriteRegressor gob-encodes r to w.
func WriteRegressor(w io.Writer, r *Regressor) error {
	return gob.NewEncoder(w).Encode(r)
}

// ReadRegressor decodes a regressor written by WriteRegressor.
func ReadRegressor(r io.Reader) (*Regressor, error) {
	var reg Regressor
	if err := gob.NewDecoder(r).Decode(&reg); err != nil {
		return nil, fmt.Errorf("mltree: decode regressor: %w", err)
	}
	if reg.Root == nil {
		return nil, fmt.Errorf("mltree: decoded regressor has no tree")
	}
	return &reg, nil
}

// SizeBytes reports the serialized size of a model (classifier or
// regressor) in bytes — the paper's "6 KB" storage metric.
func SizeBytes(model any) (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(model); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
