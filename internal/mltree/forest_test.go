package mltree

import (
	"math/rand"
	"testing"
)

func TestForestLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthClassification(rng, 600, 3, 0)
	f, err := TrainForest(x, y, 3, nil, ForestConfig{Trees: 15, Tree: Config{MaxDepth: 8}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(f.PredictBatch(x), y); acc < 0.97 {
		t.Errorf("forest training accuracy %.3f, want >= 0.97", acc)
	}
}

func TestForestAtLeastMatchesSingleTreeHeldOut(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := synthClassification(rng, 1500, 4, 0.15)
	train, test := StratifiedSplit(y, 4, 0.7, rng)
	trX, trY := gather(x, train), gatherInts(y, train)
	teX, teY := gather(x, test), gatherInts(y, test)

	tree, err := TrainClassifier(trX, trY, 4, nil, Config{MaxDepth: 6, MinSamplesLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(trX, trY, 4, nil, ForestConfig{
		Trees: 30, Tree: Config{MaxDepth: 6, MinSamplesLeaf: 4}, FeatureFraction: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	treeAcc := Accuracy(tree.PredictBatch(teX), teY)
	forestAcc := Accuracy(forest.PredictBatch(teX), teY)
	if forestAcc < treeAcc-0.03 {
		t.Errorf("forest %.3f clearly below single tree %.3f on noisy data", forestAcc, treeAcc)
	}
	t.Logf("held-out: tree %.3f, forest %.3f", treeAcc, forestAcc)
}

func TestForestIsMuchBiggerThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthClassification(rng, 500, 3, 0.1)
	tree, _ := TrainClassifier(x, y, 3, nil, Config{MaxDepth: 8})
	forest, err := TrainForest(x, y, 3, nil, ForestConfig{Trees: 25, Tree: Config{MaxDepth: 8}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if forest.NumNodes() < 10*tree.NumNodes() {
		t.Errorf("forest %d nodes vs tree %d; the footprint trade-off should be stark",
			forest.NumNodes(), tree.NumNodes())
	}
}

func TestForestFeatureSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthClassification(rng, 400, 2, 0.05)
	f, err := TrainForest(x, y, 2, nil, ForestConfig{
		Trees: 10, Tree: Config{MaxDepth: 5}, FeatureFraction: 0.5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 2 features at fraction 0.5, each tree sees exactly 1; some
	// trees must have the signal feature, so accuracy beats chance.
	if acc := Accuracy(f.PredictBatch(x), y); acc < 0.7 {
		t.Errorf("subsampled forest accuracy %.3f", acc)
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := TrainForest(nil, nil, 2, nil, ForestConfig{}); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestForestDefaultConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := synthClassification(rng, 200, 2, 0.1)
	f, err := TrainForest(x, y, 2, nil, ForestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 25 {
		t.Errorf("default ensemble size %d, want 25", len(f.Trees))
	}
}
