// Package mltree is a from-scratch CART decision-tree library providing
// the two models Misam uses: a weighted gini classifier for dataflow
// selection (§3.1) and a mean-squared-error regression tree for the
// reconfiguration engine's latency predictor (§3.3). It includes class
// weighting for imbalanced corpora, gini-decrease feature importance
// (Figure 4), k-fold cross-validation, gob serialization (the paper's
// 6 KB deployed model), and a flattened "compiled" inference path
// mirroring the paper's hand-unrolled decision logic (§5.5).
package mltree

import (
	"fmt"
	"math"
	"sort"
)

// Node is one node of a decision tree. Interior nodes route x to Left
// when x[Feature] <= Threshold, else Right. Leaves carry the predicted
// Label (classification), Value (regression), and class Probs.
type Node struct {
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	Leaf     bool
	Label    int
	Value    float64
	Probs    []float64
	Samples  float64 // total sample weight reaching this node
	Impurity float64
}

// depth reports the height of the subtree (a lone leaf has depth 1).
func (n *Node) depth() int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	l, r := n.Left.depth(), n.Right.depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// count reports the number of nodes in the subtree.
func (n *Node) count() int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + n.Left.count() + n.Right.count()
}

// route walks x down to a leaf.
func (n *Node) route(x []float64) *Node {
	for !n.Leaf {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Config controls tree growth for both classifiers and regressors.
type Config struct {
	// MaxDepth limits tree height; 0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum weighted sample count needed to
	// attempt a split (default 2).
	MinSamplesSplit float64
	// MinSamplesLeaf is the minimum weighted sample count each child must
	// retain (default 1).
	MinSamplesLeaf float64
	// MinImpurityDecrease rejects splits that improve impurity by less
	// than this (weighted by the node's share of samples).
	MinImpurityDecrease float64
	// Features optionally restricts splitting to a subset of feature
	// indices (the paper's pruned four-feature deployment). Nil uses all.
	Features []int
}

func (c Config) withDefaults() Config {
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// checkDataset validates shared training preconditions.
func checkDataset(x [][]float64, n int) (numFeatures int, err error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("mltree: empty training set")
	}
	if len(x) != n {
		return 0, fmt.Errorf("mltree: %d samples but %d targets", len(x), n)
	}
	numFeatures = len(x[0])
	for i, row := range x {
		if len(row) != numFeatures {
			return 0, fmt.Errorf("mltree: sample %d has %d features, want %d", i, len(row), numFeatures)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("mltree: sample %d feature %d is not finite", i, j)
			}
		}
	}
	return numFeatures, nil
}

// featureSet resolves cfg.Features to a concrete index list.
func featureSet(cfg Config, numFeatures int) []int {
	if cfg.Features != nil {
		return cfg.Features
	}
	all := make([]int, numFeatures)
	for i := range all {
		all[i] = i
	}
	return all
}

// sortByFeature orders idx by x[i][f] ascending.
func sortByFeature(idx []int, x [][]float64, f int) {
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]][f] < x[idx[b]][f] })
}

// accumulateImportance adds a split's weighted impurity decrease into imp.
func accumulateImportance(imp []float64, feature int, decrease float64) {
	imp[feature] += decrease
}

// normalize scales a vector to sum to 1 (no-op for a zero vector).
func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
