package mltree

import (
	"math/rand"
	"testing"
)

func TestPruneToSizeShrinksTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthClassification(rng, 800, 4, 0.2)
	cls, err := TrainClassifier(x, y, 4, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := cls.NumNodes()
	if before < 50 {
		t.Skipf("tree too small to prune meaningfully (%d nodes)", before)
	}
	collapses := cls.PruneToSize(31)
	if collapses == 0 {
		t.Fatal("no collapses performed")
	}
	if got := cls.NumNodes(); got > 31 {
		t.Errorf("pruned to %d nodes, want <= 31", got)
	}
}

func TestPruneKeepsAccuracyReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Clean signal: heavy pruning should barely hurt, because the extra
	// nodes were fitting noise.
	x, y := synthClassification(rng, 1000, 3, 0.1)
	cls, err := TrainClassifier(x, y, 3, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	full := Accuracy(cls.PredictBatch(x), y)
	cls.PruneToSize(15)
	pruned := Accuracy(cls.PredictBatch(x), y)
	if pruned < full-0.15 {
		t.Errorf("pruning cost too much accuracy: %.3f → %.3f", full, pruned)
	}
	if pruned < 0.7 {
		t.Errorf("pruned accuracy %.3f collapsed", pruned)
	}
}

func TestPrunedLeavesHaveValidDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthClassification(rng, 500, 4, 0.2)
	cls, err := TrainClassifier(x, y, 4, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cls.PruneToSize(9)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Leaf {
			if n.Feature != -1 {
				t.Error("pruned leaf keeps a split feature")
			}
			sum := 0.0
			for _, p := range n.Probs {
				if p < 0 {
					t.Error("negative probability after pruning")
				}
				sum += p
			}
			if sum < 0.99 || sum > 1.01 {
				t.Errorf("pruned leaf probs sum to %v", sum)
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(cls.Root)
}

func TestPruneRegressor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthRegression(rng, 800, 0.2)
	reg, err := TrainRegressor(x, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := reg.NumNodes()
	reg.PruneToSize(21)
	if reg.NumNodes() > 21 || reg.NumNodes() >= before {
		t.Errorf("regressor pruning failed: %d → %d", before, reg.NumNodes())
	}
	// Predictions stay within the training hull.
	p := reg.Predict([]float64{0.5, 0.5})
	lo, hi := y[0], y[0]
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if p < lo || p > hi {
		t.Errorf("pruned prediction %v outside training range [%v,%v]", p, lo, hi)
	}
}

func TestPruneSingleLeafNoop(t *testing.T) {
	reg, err := TrainRegressor([][]float64{{1}, {2}}, []float64{5, 5}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.PruneToSize(1); got != 0 {
		t.Errorf("pruning a leaf performed %d collapses", got)
	}
}

func TestPruneShrinksSerializedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := synthClassification(rng, 1200, 4, 0.25)
	cls, err := TrainClassifier(x, y, 4, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := SizeBytes(cls)
	if err != nil {
		t.Fatal(err)
	}
	cls.PruneToSize(63)
	after, err := SizeBytes(cls)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("pruning did not shrink the model: %d → %d bytes", before, after)
	}
	t.Logf("model size: %d → %d bytes (the paper's 6 KB regime)", before, after)
}
