package mltree

import "math"

// Cost-complexity (weakest-link) pruning, the standard CART
// post-processing behind the paper's compact 6 KB deployment: repeatedly
// collapse the internal node whose removal costs the least impurity per
// leaf saved, until the tree fits the requested size.

// subtreeStats aggregates a subtree's training impurity and leaf count.
func subtreeStats(n *Node) (weightedImpurity float64, leaves int) {
	if n.Leaf {
		return n.Impurity * n.Samples, 1
	}
	li, ln := subtreeStats(n.Left)
	ri, rn := subtreeStats(n.Right)
	return li + ri, ln + rn
}

// weakestLink finds the internal node with the smallest alpha =
// (R(node) − R(subtree)) / (leaves − 1), the cost of collapsing it.
func weakestLink(n *Node) (target *Node, alpha float64) {
	alpha = math.Inf(1)
	var walk func(*Node)
	walk = func(cur *Node) {
		if cur == nil || cur.Leaf {
			return
		}
		subImp, leaves := subtreeStats(cur)
		if leaves > 1 {
			a := (cur.Impurity*cur.Samples - subImp) / float64(leaves-1)
			if a < alpha {
				alpha, target = a, cur
			}
		}
		walk(cur.Left)
		walk(cur.Right)
	}
	walk(n)
	return target, alpha
}

// collapse turns an internal node into a leaf carrying its training
// majority class / mean value. The node's stored Samples and Impurity
// were recorded at build time, and the label comes from merging the
// children's distributions.
func collapse(n *Node) {
	probs := mergeProbs(n)
	n.Leaf = true
	n.Feature = -1
	n.Left, n.Right = nil, nil
	if probs != nil {
		n.Probs = probs
		best, bestP := 0, -1.0
		for c, p := range probs {
			if p > bestP {
				best, bestP = c, p
			}
		}
		n.Label = best
	}
	n.Value = mergeValue(n)
}

// mergeProbs pools the leaf class distributions under n, weighted by
// samples (nil for regression trees).
func mergeProbs(n *Node) []float64 {
	var out []float64
	var total float64
	var walk func(*Node)
	walk = func(cur *Node) {
		if cur == nil {
			return
		}
		if cur.Leaf {
			if cur.Probs == nil {
				return
			}
			if out == nil {
				out = make([]float64, len(cur.Probs))
			}
			for c, p := range cur.Probs {
				out[c] += p * cur.Samples
			}
			total += cur.Samples
			return
		}
		walk(cur.Left)
		walk(cur.Right)
	}
	walk(n)
	if out == nil || total == 0 {
		return out
	}
	for c := range out {
		out[c] /= total
	}
	return out
}

// mergeValue pools leaf regression values under n, weighted by samples.
func mergeValue(n *Node) float64 {
	var sum, total float64
	var walk func(*Node)
	walk = func(cur *Node) {
		if cur == nil {
			return
		}
		if cur.Leaf {
			sum += cur.Value * cur.Samples
			total += cur.Samples
			return
		}
		walk(cur.Left)
		walk(cur.Right)
	}
	walk(n)
	if total == 0 {
		return n.Value
	}
	return sum / total
}

// PruneToSize collapses weakest links until the tree has at most maxNodes
// nodes. It returns the number of collapses performed.
func pruneToSize(root *Node, maxNodes int) int {
	collapses := 0
	for root.count() > maxNodes {
		target, _ := weakestLink(root)
		if target == nil {
			break
		}
		collapse(target)
		collapses++
	}
	return collapses
}

// PruneToSize applies cost-complexity pruning to the classifier until it
// has at most maxNodes nodes, returning the number of collapsed subtrees.
// Importances are not recomputed; they describe the unpruned fit.
func (c *Classifier) PruneToSize(maxNodes int) int {
	return pruneToSize(c.Root, maxNodes)
}

// PruneToSize applies cost-complexity pruning to the regressor.
func (r *Regressor) PruneToSize(maxNodes int) int {
	return pruneToSize(r.Root, maxNodes)
}
