package mltree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRulesRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthClassification(rng, 400, 2, 0)
	cls, err := TrainClassifier(x, y, 2, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := cls.Rules([]string{"alpha", "beta"}, []string{"left", "right"})
	if !strings.Contains(out, "if alpha <=") && !strings.Contains(out, "if beta <=") {
		t.Errorf("rules missing named splits:\n%s", out)
	}
	if !strings.Contains(out, "→ left") || !strings.Contains(out, "→ right") {
		t.Errorf("rules missing class names:\n%s", out)
	}
	if !strings.Contains(out, "else:") {
		t.Errorf("rules missing else branches:\n%s", out)
	}
}

func TestRulesFallbackNames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := synthClassification(rng, 200, 2, 0)
	cls, err := TrainClassifier(x, y, 2, nil, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := cls.Rules(nil, nil)
	if !strings.Contains(out, "f0") && !strings.Contains(out, "f1") {
		t.Errorf("fallback feature names missing:\n%s", out)
	}
	if !strings.Contains(out, "class ") {
		t.Errorf("fallback class names missing:\n%s", out)
	}
}

func TestRegressorRules(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthRegression(rng, 300, 0.05)
	reg, err := TrainRegressor(x, y, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := reg.Rules([]string{"u", "v"})
	if !strings.Contains(out, "→ ") {
		t.Errorf("regressor rules missing leaf values:\n%s", out)
	}
}

func TestTopSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthClassification(rng, 400, 3, 0.05)
	cls, err := TrainClassifier(x, y, 3, nil, Config{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	splits := cls.TopSplits([]string{"alpha", "beta"}, 2)
	if len(splits) == 0 {
		t.Fatal("no splits extracted")
	}
	if !strings.HasPrefix(splits[0], "level 1:") {
		t.Errorf("first split not level 1: %q", splits[0])
	}
	for _, s := range splits {
		if strings.Contains(s, "level 3") {
			t.Errorf("depth bound violated: %q", s)
		}
	}
}
