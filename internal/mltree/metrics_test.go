package mltree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 2, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("Accuracy(empty) = %v, want 0", got)
	}
	if got := Accuracy([]int{1}, []int{1, 2}); got != 0 {
		t.Errorf("Accuracy(mismatch) = %v, want 0", got)
	}
}

func TestConfusionMatrixOrientation(t *testing.T) {
	// One sample predicted 0 but actually 1: m[0][1] should count it.
	m := ConfusionMatrix([]int{0}, []int{1}, 2)
	if m[0][1] != 1 || m[1][0] != 0 {
		t.Errorf("confusion matrix orientation wrong: %v", m)
	}
}

func TestMAEAndR2(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 3}
	if MAE(pred, truth) != 0 {
		t.Error("perfect MAE not 0")
	}
	if R2(pred, truth) != 1 {
		t.Error("perfect R² not 1")
	}
	meanPred := []float64{2, 2, 2}
	if got := R2(meanPred, truth); math.Abs(got) > 1e-12 {
		t.Errorf("mean-prediction R² = %v, want 0", got)
	}
	if got := MAE([]float64{0, 0}, []float64{3, -3}); got != 3 {
		t.Errorf("MAE = %v, want 3", got)
	}
	if !math.IsNaN(MAE(nil, nil)) || !math.IsNaN(R2(nil, nil)) {
		t.Error("empty inputs should give NaN")
	}
	// Constant truth: R² is 1 when predictions match, else 0.
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("constant exact R² = %v, want 1", got)
	}
	if got := R2([]float64{4, 6}, []float64{5, 5}); got != 0 {
		t.Errorf("constant inexact R² = %v, want 0", got)
	}
}

func TestKFoldPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	folds := KFold(103, 10, rng)
	if len(folds) != 10 {
		t.Fatalf("got %d folds, want 10", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in multiple folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("folds cover %d indices, want 103", len(seen))
	}
}

func TestStratifiedSplitPreservesMix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	y := make([]int, 0, 1000)
	for i := 0; i < 900; i++ {
		y = append(y, 0)
	}
	for i := 0; i < 100; i++ {
		y = append(y, 1)
	}
	train, test := StratifiedSplit(y, 2, 0.7, rng)
	count := func(idx []int, c int) int {
		n := 0
		for _, i := range idx {
			if y[i] == c {
				n++
			}
		}
		return n
	}
	if got := count(train, 1); got != 70 {
		t.Errorf("train minority = %d, want 70", got)
	}
	if got := count(test, 1); got != 30 {
		t.Errorf("test minority = %d, want 30", got)
	}
}

func TestCrossValidateClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthClassification(rng, 500, 3, 0.05)
	accs, err := CrossValidateClassifier(x, y, 3, true, Config{MaxDepth: 6}, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("got %d folds", len(accs))
	}
	for i, a := range accs {
		if a < 0.8 {
			t.Errorf("fold %d accuracy %.3f too low", i, a)
		}
	}
}

func TestCrossValidateRegressor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthRegression(rng, 800, 0.05)
	maes, r2s, err := CrossValidateRegressor(x, y, Config{MaxDepth: 10, MinSamplesLeaf: 4}, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range maes {
		if r2s[i] < 0.9 {
			t.Errorf("fold %d R² %.3f too low", i, r2s[i])
		}
		if maes[i] > 0.5 {
			t.Errorf("fold %d MAE %.3f too high", i, maes[i])
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := synthClassification(rng, 400, 3, 0.05)
	cls, err := TrainClassifier(x, y, 3, nil, Config{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteClassifier(&buf, cls); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pt := []float64{rng.Float64(), rng.Float64()}
		if got.Predict(pt) != cls.Predict(pt) {
			t.Fatal("round-tripped classifier disagrees")
		}
	}

	xr, yr := synthRegression(rng, 400, 0.1)
	reg, err := TrainRegressor(xr, yr, Config{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteRegressor(&buf, reg); err != nil {
		t.Fatal(err)
	}
	gotR, err := ReadRegressor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pt := []float64{rng.Float64(), rng.Float64()}
		if gotR.Predict(pt) != reg.Predict(pt) {
			t.Fatal("round-tripped regressor disagrees")
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadClassifier(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("ReadClassifier accepted garbage")
	}
	if _, err := ReadRegressor(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("ReadRegressor accepted garbage")
	}
}

func TestModelSizeIsCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := synthClassification(rng, 600, 4, 0.05)
	// A depth-limited tree like the paper's deployed model should stay in
	// the single-digit-KB regime.
	cls, err := TrainClassifier(x, y, 4, nil, Config{MaxDepth: 6, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	sz, err := SizeBytes(cls)
	if err != nil {
		t.Fatal(err)
	}
	if sz > 20*1024 {
		t.Errorf("model size %d bytes, want compact (< 20 KB)", sz)
	}
}

func BenchmarkCompiledInference(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x, y := synthClassification(rng, 2000, 4, 0.05)
	cls, err := TrainClassifier(x, y, 4, nil, Config{MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	cc := cls.Compile()
	pt := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.PredictClass(pt)
	}
}

func BenchmarkTreeInference(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x, y := synthClassification(rng, 2000, 4, 0.05)
	cls, err := TrainClassifier(x, y, 4, nil, Config{MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	pt := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Predict(pt)
	}
}
