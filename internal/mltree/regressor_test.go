package mltree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthRegression: y = 3*x0 + step(x1) + noise.
func synthRegression(rng *rand.Rand, n int, noise float64) (x [][]float64, y []float64) {
	for i := 0; i < n; i++ {
		f0, f1 := rng.Float64(), rng.Float64()
		target := 3*f0 + 2*math.Floor(f1*4) + noise*rng.NormFloat64()
		x = append(x, []float64{f0, f1})
		y = append(y, target)
	}
	return x, y
}

func TestRegressorFitsStepFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64()
		x = append(x, []float64{v})
		if v > 0.5 {
			y = append(y, 10)
		} else {
			y = append(y, -10)
		}
	}
	reg, err := TrainRegressor(x, y, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Predict([]float64{0.9}); math.Abs(got-10) > 1e-9 {
		t.Errorf("Predict(0.9) = %v, want 10", got)
	}
	if got := reg.Predict([]float64{0.1}); math.Abs(got+10) > 1e-9 {
		t.Errorf("Predict(0.1) = %v, want -10", got)
	}
}

func TestRegressorHighR2OnSmoothTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := synthRegression(rng, 2000, 0.05)
	train, test := Split(len(x), 0.7, rng)
	reg, err := TrainRegressor(gather(x, train), gatherFloats(y, train), Config{MaxDepth: 10, MinSamplesLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	pred := reg.PredictBatch(gather(x, test))
	if r2 := R2(pred, gatherFloats(y, test)); r2 < 0.95 {
		t.Errorf("R² = %.3f, want >= 0.95", r2)
	}
}

func TestRegressorValidation(t *testing.T) {
	if _, err := TrainRegressor(nil, nil, Config{}); err == nil {
		t.Error("accepted empty dataset")
	}
	if _, err := TrainRegressor([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := TrainRegressor([][]float64{{math.Inf(1)}}, []float64{1}, Config{}); err == nil {
		t.Error("accepted infinite feature")
	}
}

func TestRegressorConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	reg, err := TrainRegressor(x, y, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.NumNodes() != 1 {
		t.Errorf("constant target grew %d nodes, want 1 leaf", reg.NumNodes())
	}
	if got := reg.Predict([]float64{99}); got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
}

func TestRegressorImportanceNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthRegression(rng, 600, 0.1)
	reg, err := TrainRegressor(x, y, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range reg.Importance {
		if v < 0 {
			t.Errorf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sum = %v, want 1", sum)
	}
}

func TestPropertyRegressorPredictionWithinTrainingRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthRegression(rng, 400, 0.1)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	reg, err := TrainRegressor(x, y, Config{MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		pt := []float64{math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))}
		p := reg.Predict(pt)
		// Leaf means can never leave the hull of training targets.
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledRegressorMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := synthRegression(rng, 500, 0.1)
	reg, err := TrainRegressor(x, y, Config{MaxDepth: 9})
	if err != nil {
		t.Fatal(err)
	}
	cc := reg.Compile()
	for i := 0; i < 100; i++ {
		pt := []float64{rng.Float64(), rng.Float64()}
		if reg.Predict(pt) != cc.PredictValue(pt) {
			t.Fatalf("compiled mismatch at %v", pt)
		}
	}
	if cc.NumNodes() != reg.NumNodes() {
		t.Errorf("compiled nodes %d != tree nodes %d", cc.NumNodes(), reg.NumNodes())
	}
}
