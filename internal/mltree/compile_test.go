package mltree

import (
	"math/rand"
	"testing"
)

// trainRandomClassifier grows a tree on a random dataset whose shape
// (samples, features, classes, depth, noise) is itself randomized, so the
// property tests below cover shallow pure trees, deep noisy trees, and
// everything between.
func trainRandomClassifier(t *testing.T, rng *rand.Rand) (*Classifier, int, int) {
	t.Helper()
	numFeatures := 2 + rng.Intn(5)
	numClasses := 2 + rng.Intn(4)
	n := 50 + rng.Intn(300)
	noise := rng.Float64() * 0.3
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, numFeatures)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = int(row[0]*float64(numClasses)) % numClasses
		if rng.Float64() < noise {
			y[i] = rng.Intn(numClasses)
		}
	}
	cfg := Config{MaxDepth: 2 + rng.Intn(10), MinSamplesLeaf: float64(1 + rng.Intn(4))}
	cls, err := TrainClassifier(x, y, numClasses, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cls, numFeatures, numClasses
}

// TestPredictProbaIntoMatchesClassifier is the property test behind the
// fast path: for random trees and random inputs, the compiled
// allocation-free lookup returns bit-identical distributions and labels
// to the pointer-walking Classifier methods.
func TestPredictProbaIntoMatchesClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		cls, numFeatures, numClasses := trainRandomClassifier(t, rng)
		cc := cls.Compile()
		if cc.NumClasses != numClasses {
			t.Fatalf("trial %d: compiled NumClasses = %d, want %d", trial, cc.NumClasses, numClasses)
		}
		if len(cc.Probs) != cc.NumNodes()*numClasses {
			t.Fatalf("trial %d: %d flattened probs for %d nodes x %d classes",
				trial, len(cc.Probs), cc.NumNodes(), numClasses)
		}
		out := make([]float64, numClasses)
		for probe := 0; probe < 200; probe++ {
			x := make([]float64, numFeatures)
			for j := range x {
				// Mix in-range and out-of-range values so extreme leaves
				// are reached too.
				x[j] = rng.Float64()*2 - 0.5
			}
			want := cls.PredictProba(x)
			label := cc.PredictProbaInto(x, out)
			if label != cls.Predict(x) {
				t.Fatalf("trial %d: PredictProbaInto label %d, Classifier.Predict %d", trial, label, cls.Predict(x))
			}
			for k := range want {
				if out[k] != want[k] {
					t.Fatalf("trial %d: class %d proba %v, want %v (x=%v)", trial, k, out[k], want[k], x)
				}
			}
		}
	}
}

// TestPredictConfidentMatchesProba checks the confidence/margin lookup
// against the reference distribution: class identical to PredictClass,
// conf equal to the class's probability, margin equal to conf minus the
// best other class.
func TestPredictConfidentMatchesProba(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		cls, numFeatures, _ := trainRandomClassifier(t, rng)
		cc := cls.Compile()
		for probe := 0; probe < 200; probe++ {
			x := make([]float64, numFeatures)
			for j := range x {
				x[j] = rng.Float64()*2 - 0.5
			}
			class, conf, margin := cc.PredictConfident(x)
			if class != cc.PredictClass(x) {
				t.Fatalf("trial %d: PredictConfident class %d, PredictClass %d", trial, class, cc.PredictClass(x))
			}
			probs := cls.PredictProba(x)
			if conf != probs[class] {
				t.Fatalf("trial %d: conf %v, want probs[%d] = %v", trial, conf, class, probs[class])
			}
			runnerUp := 0.0
			for k, p := range probs {
				if k != class && p > runnerUp {
					runnerUp = p
				}
			}
			if margin != conf-runnerUp {
				t.Fatalf("trial %d: margin %v, want %v", trial, margin, conf-runnerUp)
			}
			if conf < 0 || conf > 1+1e-12 {
				t.Fatalf("trial %d: confidence %v out of [0,1]", trial, conf)
			}
		}
	}
}

// TestPredictConfidentRegressor: a regressor-compiled tree has no class
// distributions; the confidence surface degrades to zeros, not a panic.
func TestPredictConfidentRegressor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, 80)
	y := make([]float64, 80)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = x[i][0] * 3
	}
	reg, err := TrainRegressor(x, y, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cc := reg.Compile()
	if cc.NumClasses != 0 || len(cc.Probs) != 0 {
		t.Fatalf("regressor compiled with NumClasses=%d, %d probs; want 0, 0", cc.NumClasses, len(cc.Probs))
	}
	_, conf, margin := cc.PredictConfident([]float64{0.5, 0.5})
	if conf != 0 || margin != 0 {
		t.Fatalf("regressor confidence = (%v, %v), want zeros", conf, margin)
	}
}

// BenchmarkPredictProbaInto documents the zero-allocation claim the fast
// path depends on.
func BenchmarkPredictProbaInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthClassification(rng, 600, 4, 0.1)
	cls, err := TrainClassifier(x, y, 4, nil, Config{MaxDepth: 10})
	if err != nil {
		b.Fatal(err)
	}
	cc := cls.Compile()
	out := make([]float64, 4)
	probe := []float64{0.3, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.PredictProbaInto(probe, out)
	}
}
