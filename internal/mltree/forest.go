package mltree

import (
	"fmt"
	"math"
	"math/rand"
)

// Forest is a bagged random-forest classifier. The paper deliberately
// deploys a single decision tree ("due to its lightweight footprint and
// low-latency inference", §3.1); the forest exists to quantify that
// trade-off — a few points of accuracy against an order of magnitude in
// model size and inference time (see BenchmarkAblationForest).
type Forest struct {
	Trees       []*Classifier
	NumClasses  int
	NumFeatures int
}

// ForestConfig controls forest training.
type ForestConfig struct {
	// Trees is the ensemble size (default 25).
	Trees int
	// Tree configures each member; Features is overridden per tree when
	// FeatureFraction < 1.
	Tree Config
	// FeatureFraction is the share of features each tree may split on
	// (default 1/√d style: 0 means sqrt of the feature count).
	FeatureFraction float64
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

// TrainForest fits a random forest on (x, y) with bootstrap sampling and
// per-tree feature subsets. classWeights follow TrainClassifier.
func TrainForest(x [][]float64, y []int, numClasses int, classWeights []float64, cfg ForestConfig) (*Forest, error) {
	numFeatures, err := checkDataset(x, len(y))
	if err != nil {
		return nil, err
	}
	if cfg.Trees <= 0 {
		cfg.Trees = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	subset := numFeatures
	if cfg.FeatureFraction > 0 && cfg.FeatureFraction < 1 {
		subset = int(math.Ceil(cfg.FeatureFraction * float64(numFeatures)))
	} else if cfg.FeatureFraction == 0 {
		subset = int(math.Ceil(math.Sqrt(float64(numFeatures))))
	}
	if subset < 1 {
		subset = 1
	}

	f := &Forest{NumClasses: numClasses, NumFeatures: numFeatures}
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		bx := make([][]float64, len(x))
		by := make([]int, len(y))
		for i := range bx {
			j := rng.Intn(len(x))
			bx[i], by[i] = x[j], y[j]
		}
		treeCfg := cfg.Tree
		if subset < numFeatures {
			perm := rng.Perm(numFeatures)[:subset]
			treeCfg.Features = perm
		}
		cls, err := TrainClassifier(bx, by, numClasses, classWeights, treeCfg)
		if err != nil {
			return nil, fmt.Errorf("mltree: forest tree %d: %w", t, err)
		}
		f.Trees = append(f.Trees, cls)
	}
	return f, nil
}

// Predict returns the majority vote over the ensemble (ties break toward
// the lower class index).
func (f *Forest) Predict(x []float64) int {
	votes := make([]int, f.NumClasses)
	for _, t := range f.Trees {
		votes[t.Predict(x)]++
	}
	best := 0
	for c, v := range votes {
		if v > votes[best] {
			best = c
		}
	}
	return best
}

// PredictBatch classifies each row of x.
func (f *Forest) PredictBatch(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = f.Predict(row)
	}
	return out
}

// NumNodes reports the total node count across the ensemble — the model
// footprint the paper's single tree avoids.
func (f *Forest) NumNodes() int {
	n := 0
	for _, t := range f.Trees {
		n += t.NumNodes()
	}
	return n
}
