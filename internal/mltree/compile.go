package mltree

// Compiled is a flattened, allocation-free inference form of a decision
// tree: nodes laid out in a preorder array walked with integer indices.
// This mirrors the paper's custom inference function that "unrolls the
// decision logic" instead of using a generic library (§5.5); the
// Figure 12 breakdown measures this path.
type Compiled struct {
	// Feature[i] < 0 marks a leaf; otherwise route on Threshold[i].
	Feature   []int32
	Threshold []float64
	// Left/Right are node indices into the arrays.
	Left, Right []int32
	// Label holds the class at leaves (classifier); Value the estimate
	// (regressor). Both are populated so one Compiled serves either tree.
	Label []int32
	Value []float64
	// Probs holds the flattened leaf class distributions: NumClasses
	// values per node (all zeros at interior nodes), so confidence
	// lookups walk the same contiguous arrays as class routing instead of
	// chasing Node pointers. Empty for regressors (NumClasses 0).
	Probs      []float64
	NumClasses int
}

// compile flattens the tree rooted at n, returning its index.
func (c *Compiled) compile(n *Node) int32 {
	i := int32(len(c.Feature))
	c.Feature = append(c.Feature, -1)
	c.Threshold = append(c.Threshold, 0)
	c.Left = append(c.Left, -1)
	c.Right = append(c.Right, -1)
	c.Label = append(c.Label, int32(n.Label))
	c.Value = append(c.Value, n.Value)
	if c.NumClasses > 0 {
		base := len(c.Probs)
		c.Probs = append(c.Probs, make([]float64, c.NumClasses)...)
		if n.Leaf {
			copy(c.Probs[base:], n.Probs)
		}
	}
	if !n.Leaf {
		c.Feature[i] = int32(n.Feature)
		c.Threshold[i] = n.Threshold
		c.Left[i] = c.compile(n.Left)
		c.Right[i] = c.compile(n.Right)
	}
	return i
}

// Compile flattens the classifier for low-latency inference.
func (c *Classifier) Compile() *Compiled {
	out := &Compiled{NumClasses: c.NumClasses}
	out.compile(c.Root)
	return out
}

// Compile flattens the regressor for low-latency inference.
func (r *Regressor) Compile() *Compiled {
	out := &Compiled{}
	out.compile(r.Root)
	return out
}

// walk routes x to a leaf index.
func (c *Compiled) walk(x []float64) int32 {
	i := int32(0)
	for c.Feature[i] >= 0 {
		if x[c.Feature[i]] <= c.Threshold[i] {
			i = c.Left[i]
		} else {
			i = c.Right[i]
		}
	}
	return i
}

// PredictClass returns the class at the routed leaf.
func (c *Compiled) PredictClass(x []float64) int { return int(c.Label[c.walk(x)]) }

// PredictValue returns the regression estimate at the routed leaf.
func (c *Compiled) PredictValue(x []float64) float64 { return c.Value[c.walk(x)] }

// PredictProbaInto routes x to a leaf and copies its class distribution
// into out, returning the leaf's class label. out must have at least
// NumClasses elements. Unlike Classifier.PredictProba this allocates
// nothing and never touches the pointer-chasing Node tree, so it is safe
// on a serving hot path.
func (c *Compiled) PredictProbaInto(x, out []float64) int {
	i := int(c.walk(x))
	copy(out[:c.NumClasses], c.Probs[i*c.NumClasses:(i+1)*c.NumClasses])
	return int(c.Label[i])
}

// PredictConfident routes x to a leaf and returns its class, the leaf's
// training probability mass for that class (the confidence), and the
// margin over the runner-up class. The class is always identical to
// PredictClass's; conf and margin are 0 for a regressor-compiled tree.
func (c *Compiled) PredictConfident(x []float64) (class int, conf, margin float64) {
	i := int(c.walk(x))
	class = int(c.Label[i])
	if c.NumClasses == 0 {
		return class, 0, 0
	}
	base := i * c.NumClasses
	runnerUp := 0.0
	for k := 0; k < c.NumClasses; k++ {
		p := c.Probs[base+k]
		if k == class {
			conf = p
		} else if p > runnerUp {
			runnerUp = p
		}
	}
	return class, conf, conf - runnerUp
}

// NumNodes reports the flattened node count.
func (c *Compiled) NumNodes() int { return len(c.Feature) }
