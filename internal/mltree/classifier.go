package mltree

import (
	"fmt"
)

// Classifier is a CART decision-tree classifier with optional per-class
// sample weights (the paper's inverse-frequency weighting for class
// imbalance, §3.1).
type Classifier struct {
	Root        *Node
	NumClasses  int
	NumFeatures int
	Importance  []float64 // normalized gini-decrease per feature (Figure 4)
}

// BalancedWeights returns per-class weights inversely proportional to
// class frequency, normalized so the mean weight is 1 — the §3.1 strategy
// for the imbalanced training corpus.
func BalancedWeights(y []int, numClasses int) []float64 {
	counts := make([]float64, numClasses)
	for _, c := range y {
		counts[c]++
	}
	w := make([]float64, numClasses)
	n := float64(len(y))
	k := float64(numClasses)
	for c := range w {
		if counts[c] > 0 {
			w[c] = n / (k * counts[c])
		}
	}
	return w
}

// TrainClassifier grows a gini CART tree on (x, y). classWeights may be
// nil for uniform weighting or per-class weights (see BalancedWeights).
func TrainClassifier(x [][]float64, y []int, numClasses int, classWeights []float64, cfg Config) (*Classifier, error) {
	numFeatures, err := checkDataset(x, len(y))
	if err != nil {
		return nil, err
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("mltree: need at least 2 classes, got %d", numClasses)
	}
	for i, c := range y {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("mltree: label %d of sample %d out of range [0,%d)", c, i, numClasses)
		}
	}
	if classWeights == nil {
		classWeights = make([]float64, numClasses)
		for i := range classWeights {
			classWeights[i] = 1
		}
	} else if len(classWeights) != numClasses {
		return nil, fmt.Errorf("mltree: %d class weights for %d classes", len(classWeights), numClasses)
	}
	cfg = cfg.withDefaults()
	cls := &Classifier{
		NumClasses:  numClasses,
		NumFeatures: numFeatures,
		Importance:  make([]float64, numFeatures),
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	b := &classifierBuilder{
		x: x, y: y, w: classWeights,
		cfg:      cfg,
		features: featureSet(cfg, numFeatures),
		cls:      cls,
	}
	cls.Root = b.grow(idx, 1)
	normalize(cls.Importance)
	return cls, nil
}

type classifierBuilder struct {
	x        [][]float64
	y        []int
	w        []float64 // per-class weights
	cfg      Config
	features []int
	cls      *Classifier
}

// classDist returns the weighted class distribution over idx and its total.
func (b *classifierBuilder) classDist(idx []int) ([]float64, float64) {
	dist := make([]float64, b.cls.NumClasses)
	total := 0.0
	for _, i := range idx {
		w := b.w[b.y[i]]
		dist[b.y[i]] += w
		total += w
	}
	return dist, total
}

// gini computes 1 - Σ p² from a weighted class distribution.
func gini(dist []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, d := range dist {
		p := d / total
		g -= p * p
	}
	return g
}

func leafFromDist(dist []float64, total, impurity float64) *Node {
	best, bestW := 0, -1.0
	probs := make([]float64, len(dist))
	for c, d := range dist {
		if d > bestW {
			best, bestW = c, d
		}
		if total > 0 {
			probs[c] = d / total
		}
	}
	return &Node{Leaf: true, Label: best, Probs: probs, Samples: total, Impurity: impurity, Feature: -1}
}

func (b *classifierBuilder) grow(idx []int, depth int) *Node {
	dist, total := b.classDist(idx)
	imp := gini(dist, total)
	if imp == 0 || total < b.cfg.MinSamplesSplit || (b.cfg.MaxDepth > 0 && depth > b.cfg.MaxDepth) {
		return leafFromDist(dist, total, imp)
	}

	bestDecrease := b.cfg.MinImpurityDecrease
	bestFeature, bestThreshold := -1, 0.0
	// Scratch arrays for the scan.
	left := make([]float64, b.cls.NumClasses)
	for _, f := range b.features {
		sortByFeature(idx, b.x, f)
		for c := range left {
			left[c] = 0
		}
		leftTotal := 0.0
		for i := 0; i < len(idx)-1; i++ {
			w := b.w[b.y[idx[i]]]
			left[b.y[idx[i]]] += w
			leftTotal += w
			xi, xj := b.x[idx[i]][f], b.x[idx[i+1]][f]
			if xi == xj {
				continue
			}
			rightTotal := total - leftTotal
			if leftTotal < b.cfg.MinSamplesLeaf || rightTotal < b.cfg.MinSamplesLeaf {
				continue
			}
			gl := 1.0
			gr := 1.0
			for c := range left {
				pl := left[c] / leftTotal
				pr := (dist[c] - left[c]) / rightTotal
				gl -= pl * pl
				gr -= pr * pr
			}
			decrease := imp - (leftTotal*gl+rightTotal*gr)/total
			if decrease > bestDecrease {
				bestDecrease = decrease
				bestFeature = f
				bestThreshold = (xi + xj) / 2
			}
		}
	}
	if bestFeature < 0 {
		return leafFromDist(dist, total, imp)
	}

	var li, ri []int
	for _, i := range idx {
		if b.x[i][bestFeature] <= bestThreshold {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return leafFromDist(dist, total, imp)
	}
	accumulateImportance(b.cls.Importance, bestFeature, total*bestDecrease)
	n := &Node{Feature: bestFeature, Threshold: bestThreshold, Samples: total, Impurity: imp}
	n.Left = b.grow(li, depth+1)
	n.Right = b.grow(ri, depth+1)
	return n
}

// Predict returns the predicted class for x.
func (c *Classifier) Predict(x []float64) int { return c.Root.route(x).Label }

// PredictProba returns the leaf's class distribution for x.
func (c *Classifier) PredictProba(x []float64) []float64 {
	return append([]float64(nil), c.Root.route(x).Probs...)
}

// PredictBatch classifies each row of x.
func (c *Classifier) PredictBatch(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = c.Predict(row)
	}
	return out
}

// Depth reports the tree height.
func (c *Classifier) Depth() int { return c.Root.depth() }

// NumNodes reports the total node count.
func (c *Classifier) NumNodes() int { return c.Root.count() }
