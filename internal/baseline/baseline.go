// Package baseline provides the comparison systems the paper evaluates
// Misam against (§4): an Intel MKL-style CPU SpGEMM, a cuSPARSE-style GPU
// library, and Trapezoid's three ASIC dataflows. The real systems are not
// available in this environment, so each is an analytic cost model whose
// terms follow the platform's published bottlenecks: the CPU is
// cache/bandwidth-bound with modest vectorization on irregular rows; the
// GPU has enormous dense throughput but launch overhead and warp
// divergence on imbalanced sparse rows; Trapezoid is a fixed-function
// accelerator whose three dataflows trade input reuse, output reuse and
// index-matching cost exactly as §2.1 describes. Constants are calibrated
// so the relative shapes of Figures 10, 11 and 13 hold.
package baseline

import (
	"misam/internal/sparse"
)

// Stats are the cheap workload statistics every cost model consumes.
type Stats struct {
	M, K, N    int
	NNZA, NNZB int
	// Flops is the useful multiply-accumulate count.
	Flops float64
	// Outputs is the (capped upper-bound) number of C entries.
	Outputs float64
	// ADensity, BDensity are nnz fractions.
	ADensity, BDensity float64
	// AImbalance is longest-row / average-row of A (≥1).
	AImbalance float64
	// AvgBRowNNZ is the mean nonzeros per B row.
	AvgBRowNNZ float64
}

// Collect computes Stats for the product A×B in O(nnz).
func Collect(a, b *sparse.CSR) Stats {
	s := Stats{
		M: a.Rows, K: a.Cols, N: b.Cols,
		NNZA: a.NNZ(), NNZB: b.NNZ(),
		ADensity: a.Density(), BDensity: b.Density(),
	}
	bRowNNZ := make([]int, b.Rows)
	for r := 0; r < b.Rows; r++ {
		bRowNNZ[r] = b.RowNNZ(r)
	}
	maxRow := 0
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		if len(cols) > maxRow {
			maxRow = len(cols)
		}
		var ub float64
		for _, c := range cols {
			s.Flops += float64(bRowNNZ[c])
			ub += float64(bRowNNZ[c])
		}
		if ub > float64(b.Cols) {
			ub = float64(b.Cols)
		}
		s.Outputs += ub
	}
	if a.Rows > 0 && s.NNZA > 0 {
		s.AImbalance = float64(maxRow) / (float64(s.NNZA) / float64(a.Rows))
	} else {
		s.AImbalance = 1
	}
	if b.Rows > 0 {
		s.AvgBRowNNZ = float64(s.NNZB) / float64(b.Rows)
	}
	return s
}

// Estimate is a latency estimate in seconds from one baseline model.
type Estimate struct {
	Seconds float64
	// ComputeBound reports whether the compute term (rather than memory
	// traffic or overhead) dominated.
	ComputeBound bool
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
