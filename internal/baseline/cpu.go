package baseline

// CPUModel is an MKL-style multicore SpGEMM/SpMM cost model for the
// paper's Intel i9-11980HK (8 cores, 32 GB, ~45 W sustained).
type CPUModel struct {
	// BaseMACRate is MACs/s on fully irregular gather-dominated rows.
	BaseMACRate float64
	// VectorMACRate is MACs/s once rows are long enough to vectorize.
	VectorMACRate float64
	// VectorRowNNZ is the B-row population where vectorization saturates.
	VectorRowNNZ float64
	// MemBandwidth is sustained DRAM bandwidth (bytes/s).
	MemBandwidth float64
	// CacheBytes is the effective last-level cache for B reuse.
	CacheBytes float64
	// PerRowOverhead is seconds of loop/pointer bookkeeping per A row.
	PerRowOverhead float64
	// FixedOverhead is per-call setup (threading fan-out, format checks).
	FixedOverhead float64
}

// DefaultCPU returns the calibrated i9-11980HK model.
func DefaultCPU() CPUModel {
	return CPUModel{
		BaseMACRate:    0.9e9,
		VectorMACRate:  8e9,
		VectorRowNNZ:   64,
		MemBandwidth:   38e9,
		CacheBytes:     24 << 20,
		PerRowOverhead: 18e-9,
		FixedOverhead:  8e-6,
	}
}

// Estimate returns the modeled MKL latency for the workload.
func (m CPUModel) Estimate(s Stats) Estimate {
	// Vectorization efficiency grows with B row length (unit-stride runs).
	frac := s.AvgBRowNNZ / m.VectorRowNNZ
	if frac > 1 {
		frac = 1
	}
	rate := m.BaseMACRate + (m.VectorMACRate-m.BaseMACRate)*frac
	compute := s.Flops / rate

	// Memory traffic: stream A once, fetch B rows per use with a miss
	// fraction that collapses when B fits in LLC, write C once.
	bBytes := float64(s.NNZB) * 12
	missFrac := 1.0
	if bBytes <= m.CacheBytes {
		missFrac = 0.15
	}
	traffic := float64(s.NNZA)*12 + s.Flops*8*missFrac + s.Outputs*8
	memory := traffic / m.MemBandwidth

	t := max(compute, memory) + float64(s.M)*m.PerRowOverhead + m.FixedOverhead
	return Estimate{Seconds: t, ComputeBound: compute >= memory}
}
