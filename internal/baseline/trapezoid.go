package baseline

import "fmt"

// Trapezoid (Yang, Emer, Sanchez — ISCA 2024) is the versatile ASIC
// accelerator the paper both compares against and integrates with
// (§6.3). It supports three SpGEMM/SpMM dataflows but "offers no dynamic
// strategy for selecting among them at runtime" (§1); Misam's selector is
// trained over these dataflows in Figure 13. Each dataflow's cost model
// follows its §2.1 characterization:
//
//   - Inner product pays index-intersection work per output pair and
//     re-fetches B's columns once per A row.
//   - Outer product maximizes input reuse but materializes every partial
//     product through memory before the merge.
//   - Row-wise product avoids matching but fetches B's rows irregularly,
//     losing reuse when B does not fit on chip.
type TrapezoidDataflow int

const (
	TrapezoidInner TrapezoidDataflow = iota
	TrapezoidOuter
	TrapezoidRowWise
	NumTrapezoidDataflows
)

// String names the dataflow.
func (d TrapezoidDataflow) String() string {
	switch d {
	case TrapezoidInner:
		return "IP"
	case TrapezoidOuter:
		return "OP"
	case TrapezoidRowWise:
		return "RW"
	default:
		return fmt.Sprintf("TrapezoidDataflow(%d)", int(d))
	}
}

// TrapezoidDataflows lists the dataflows in a stable order.
var TrapezoidDataflows = []TrapezoidDataflow{TrapezoidInner, TrapezoidOuter, TrapezoidRowWise}

// TrapezoidModel parameterizes the ASIC: a PE array at a fixed clock with
// HBM-class bandwidth and an on-chip buffer for reuse.
type TrapezoidModel struct {
	// MACRate is peak MACs/s of the PE array.
	MACRate float64
	// MatchRate is index comparisons/s of the intersection units.
	MatchRate float64
	// MemBandwidth is bytes/s to off-chip memory.
	MemBandwidth float64
	// BufferBytes is the on-chip capacity determining B reuse.
	BufferBytes float64
	// MergeBytesPerPartial is the off-chip round-trip cost per outer
	// product partial result that overflows the buffer.
	MergeBytesPerPartial float64
	// FixedOverhead is per-kernel configuration time.
	FixedOverhead float64
}

// DefaultTrapezoid returns the calibrated model: a ~70 mm² array with
// peak throughput comparable to the Misam designs (it is a same-era
// accelerator) but DDR-class bandwidth and a fixed on-chip buffer —
// Misam's wins in Figure 10 come from dataflow adaptation, not a slower
// rival.
func DefaultTrapezoid() TrapezoidModel {
	return TrapezoidModel{
		MACRate:              200e9,
		MatchRate:            400e9,
		MemBandwidth:         150e9,
		BufferBytes:          8 << 20,
		MergeBytesPerPartial: 16,
		FixedOverhead:        5e-6,
	}
}

// EstimateDataflow returns the modeled latency of running the workload
// under one fixed Trapezoid dataflow.
func (m TrapezoidModel) EstimateDataflow(d TrapezoidDataflow, s Stats) Estimate {
	switch d {
	case TrapezoidInner:
		// Intersections cost (row length + column length) comparisons per
		// output pair. B is processed in buffer-sized column tiles; A is
		// re-streamed once per tile (the §2.1 "redundant fetching",
		// bounded by tiling).
		avgRowA := float64(s.NNZA) / max(1, float64(s.M))
		avgColB := float64(s.NNZB) / max(1, float64(s.N))
		matches := float64(s.M) * float64(s.N) * (avgRowA + avgColB)
		compute := max(s.Flops/m.MACRate, matches/m.MatchRate)
		bBytes := float64(s.NNZB) * 12
		bTiles := max(1, bBytes/m.BufferBytes)
		traffic := float64(s.NNZA)*12*bTiles + bBytes + s.Outputs*8
		memory := traffic / m.MemBandwidth
		t := max(compute, memory) + m.FixedOverhead
		return Estimate{Seconds: t, ComputeBound: compute >= memory}

	case TrapezoidOuter:
		// Every partial product round-trips memory when the partial
		// matrices overflow the buffer (§2.1: "high off-chip traffic").
		compute := s.Flops / m.MACRate
		partialBytes := s.Flops * m.MergeBytesPerPartial
		overflow := clamp01(1 - m.BufferBytes/max(1, s.Flops*8))
		partialBytes *= overflow
		traffic := float64(s.NNZA)*12 + float64(s.NNZB)*12 + partialBytes + s.Outputs*8
		memory := traffic / m.MemBandwidth
		t := max(compute, memory) + m.FixedOverhead
		return Estimate{Seconds: t, ComputeBound: compute >= memory}

	case TrapezoidRowWise:
		// Gustavson: no matching; B rows fetched on demand following A's
		// irregular column pattern. When B overflows the buffer, the
		// overflowing fraction of row uses miss and re-fetch (§2.1:
		// "irregular access to B's rows ... reduces reuse efficiency").
		compute := s.Flops / m.MACRate
		bBytes := float64(s.NNZB) * 12
		missFrac := clamp01(1 - m.BufferBytes/max(1, bBytes))
		bTraffic := bBytes + max(0, s.Flops*8-bBytes)*missFrac
		traffic := float64(s.NNZA)*12 + bTraffic + s.Outputs*8
		memory := traffic / m.MemBandwidth
		t := max(compute, memory) + m.FixedOverhead
		return Estimate{Seconds: t, ComputeBound: compute >= memory}

	default:
		return Estimate{}
	}
}

// EstimateAll returns the latency of every dataflow.
func (m TrapezoidModel) EstimateAll(s Stats) [NumTrapezoidDataflows]Estimate {
	var out [NumTrapezoidDataflows]Estimate
	for _, d := range TrapezoidDataflows {
		out[d] = m.EstimateDataflow(d, s)
	}
	return out
}

// BestDataflow returns the fastest dataflow and its estimate.
func (m TrapezoidModel) BestDataflow(s Stats) (TrapezoidDataflow, Estimate) {
	best := TrapezoidInner
	ests := m.EstimateAll(s)
	for _, d := range TrapezoidDataflows {
		if ests[d].Seconds < ests[best].Seconds {
			best = d
		}
	}
	return best, ests[best]
}
