package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
	"misam/internal/spgemm"
)

func TestCollectStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := sparse.Uniform(rng, 100, 80, 0.1)
	b := sparse.Uniform(rng, 80, 60, 0.2)
	s := Collect(a, b)
	if s.M != 100 || s.K != 80 || s.N != 60 {
		t.Errorf("dims = %d/%d/%d", s.M, s.K, s.N)
	}
	if int(s.Flops) != spgemm.FlopCount(a, b) {
		t.Errorf("Flops = %v, want %d", s.Flops, spgemm.FlopCount(a, b))
	}
	if s.NNZA != a.NNZ() || s.NNZB != b.NNZ() {
		t.Error("nnz wrong")
	}
	if s.AImbalance < 1 {
		t.Errorf("imbalance %v < 1", s.AImbalance)
	}
	if s.Outputs > float64(s.M)*float64(s.N) {
		t.Errorf("outputs %v exceed M×N", s.Outputs)
	}
}

func TestCollectEmptyMatrix(t *testing.T) {
	a := sparse.NewCOO(10, 10).ToCSR()
	s := Collect(a, a)
	if s.Flops != 0 || s.AImbalance != 1 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestCPUEstimatePositiveAndMonotone(t *testing.T) {
	m := DefaultCPU()
	rng := rand.New(rand.NewSource(2))
	small := Collect(sparse.Uniform(rng, 100, 100, 0.05), sparse.DenseRandom(rng, 100, 32))
	big := Collect(sparse.Uniform(rng, 2000, 2000, 0.05), sparse.DenseRandom(rng, 2000, 256))
	ts, tb := m.Estimate(small).Seconds, m.Estimate(big).Seconds
	if ts <= 0 || tb <= 0 {
		t.Fatal("nonpositive estimates")
	}
	if tb <= ts {
		t.Errorf("bigger workload not slower: %v vs %v", tb, ts)
	}
}

func TestCPUVectorizationHelpsLongRows(t *testing.T) {
	m := DefaultCPU()
	// Same flops, different B row lengths: long rows vectorize.
	short := Stats{M: 1000, K: 1000, N: 8, NNZA: 10000, NNZB: 8000, Flops: 1e8, Outputs: 8000, AvgBRowNNZ: 4, AImbalance: 1}
	long := short
	long.AvgBRowNNZ = 256
	if m.Estimate(long).Seconds >= m.Estimate(short).Seconds {
		t.Error("vectorized long rows should be faster at equal flops")
	}
}

func TestGPUDensePathEngages(t *testing.T) {
	m := DefaultGPU()
	sparseB := Stats{Flops: 1e9, BDensity: 0.1, AImbalance: 1, NNZA: 1000, NNZB: 1000, Outputs: 1e6}
	denseB := sparseB
	denseB.BDensity = 1.0
	td, ts := m.Estimate(denseB).Seconds, m.Estimate(sparseB).Seconds
	if td >= ts {
		t.Errorf("dense path %v not faster than sparse path %v", td, ts)
	}
}

func TestGPUDivergencePenalty(t *testing.T) {
	m := DefaultGPU()
	balanced := Stats{Flops: 1e9, BDensity: 0.2, AImbalance: 1, Outputs: 1e6}
	skewed := balanced
	skewed.AImbalance = 50
	if m.Estimate(skewed).Seconds <= m.Estimate(balanced).Seconds {
		t.Error("imbalanced rows should slow the GPU (warp divergence)")
	}
}

func TestGPULaunchOverheadFloorsTinyWork(t *testing.T) {
	m := DefaultGPU()
	tiny := Stats{Flops: 10, BDensity: 0.5, AImbalance: 1, Outputs: 10}
	if got := m.Estimate(tiny).Seconds; got < m.LaunchOverhead {
		t.Errorf("tiny workload %v below launch overhead %v", got, m.LaunchOverhead)
	}
}

func TestTrapezoidDataflowNames(t *testing.T) {
	if TrapezoidInner.String() != "IP" || TrapezoidOuter.String() != "OP" || TrapezoidRowWise.String() != "RW" {
		t.Error("dataflow names wrong")
	}
	if TrapezoidDataflow(9).String() != "TrapezoidDataflow(9)" {
		t.Error("invalid dataflow formatting")
	}
	if (TrapezoidModel{}).EstimateDataflow(TrapezoidDataflow(9), Stats{}) != (Estimate{}) {
		t.Error("invalid dataflow should return zero estimate")
	}
}

func TestTrapezoidInnerHatesLargeB(t *testing.T) {
	m := DefaultTrapezoid()
	rng := rand.New(rand.NewSource(3))
	// Large B that cannot stay resident: inner product re-fetches it per
	// A row and loses badly to row-wise.
	a := sparse.Uniform(rng, 5000, 5000, 0.001)
	b := sparse.Uniform(rng, 5000, 5000, 0.01)
	s := Collect(a, b)
	ip := m.EstimateDataflow(TrapezoidInner, s).Seconds
	rw := m.EstimateDataflow(TrapezoidRowWise, s).Seconds
	if ip <= rw {
		t.Errorf("IP %v not slower than RW %v on large sparse B", ip, rw)
	}
}

func TestTrapezoidOuterHatesBigPartials(t *testing.T) {
	m := DefaultTrapezoid()
	// Huge flops → partial products overflow the buffer and round-trip
	// memory (§2.1).
	s := Stats{M: 10000, K: 10000, N: 10000, NNZA: 5e6, NNZB: 5e6,
		Flops: 5e9, Outputs: 5e7, BDensity: 0.05, AImbalance: 1}
	op := m.EstimateDataflow(TrapezoidOuter, s).Seconds
	rwS := s
	rw := m.EstimateDataflow(TrapezoidRowWise, rwS).Seconds
	if op <= rw {
		t.Errorf("OP %v not slower than RW %v when partials overflow", op, rw)
	}
}

func TestTrapezoidOuterWinsWhenPartialsFit(t *testing.T) {
	m := DefaultTrapezoid()
	// Tiny product, big B relative to buffer: OP streams A and B once;
	// RW re-fetches B rows; IP re-sweeps B.
	s := Stats{M: 100000, K: 100000, N: 100000, NNZA: 200000, NNZB: 3e6,
		Flops: 60000, Outputs: 60000, BDensity: 3e-7, AImbalance: 1}
	op := m.EstimateDataflow(TrapezoidOuter, s).Seconds
	ip := m.EstimateDataflow(TrapezoidInner, s).Seconds
	if op >= ip {
		t.Errorf("OP %v not faster than IP %v on tiny-flop workload", op, ip)
	}
}

func TestTrapezoidBestDataflowIsMin(t *testing.T) {
	m := DefaultTrapezoid()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		a := sparse.Uniform(rng, 500, 500, 0.01+0.02*float64(i))
		b := sparse.Uniform(rng, 500, 500, 0.01*float64(i+1))
		s := Collect(a, b)
		best, est := m.BestDataflow(s)
		for _, d := range TrapezoidDataflows {
			if m.EstimateDataflow(d, s).Seconds < est.Seconds {
				t.Errorf("BestDataflow picked %v but %v is faster", best, d)
			}
		}
	}
}

func TestPropertyEstimatesFiniteAndPositive(t *testing.T) {
	cpu, gpu, trap := DefaultCPU(), DefaultGPU(), DefaultTrapezoid()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := sparse.Uniform(rng, rng.Intn(200)+1, rng.Intn(200)+1, rng.Float64())
		b := sparse.Uniform(rng, a.Cols, rng.Intn(200)+1, rng.Float64())
		s := Collect(a, b)
		if cpu.Estimate(s).Seconds <= 0 || gpu.Estimate(s).Seconds <= 0 {
			return false
		}
		for _, d := range TrapezoidDataflows {
			if trap.EstimateDataflow(d, s).Seconds <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
