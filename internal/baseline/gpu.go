package baseline

// GPUModel is a cuSPARSE-style cost model for the paper's RTX A6000
// (84 SMs, 48 GB GDDR6 at 768 GB/s).
type GPUModel struct {
	// DenseMACRate is MACs/s on dense-B (SpMM fast path / tensor cores).
	DenseMACRate float64
	// SparseMACRate is MACs/s on the generic SpGEMM path.
	SparseMACRate float64
	// DenseThresholdB is the B density above which the dense path engages.
	DenseThresholdB float64
	// DivergencePenalty divides throughput by
	// 1 + min(imbalance-1, DivergenceCap)/this: warp divergence on
	// imbalanced rows, saturating once whole warps serialize.
	DivergencePenalty float64
	DivergenceCap     float64
	// MemBandwidth is bytes/s; CacheBytes is the L2 governing B reuse on
	// the sparse path.
	MemBandwidth float64
	CacheBytes   float64
	// LaunchOverhead is per-call kernel launch + descriptor setup.
	LaunchOverhead float64
	// AnalysisPerNNZ is cuSPARSE's per-nonzero format inspection cost.
	AnalysisPerNNZ float64
}

// DefaultGPU returns the calibrated RTX A6000 model.
func DefaultGPU() GPUModel {
	return GPUModel{
		DenseMACRate:      1.2e12,
		SparseMACRate:     12e9,
		DenseThresholdB:   0.9,
		DivergencePenalty: 6,
		DivergenceCap:     10,
		MemBandwidth:      600e9,
		CacheBytes:        6 << 20,
		LaunchOverhead:    18e-6,
		AnalysisPerNNZ:    0.12e-9,
	}
}

// Estimate returns the modeled cuSPARSE latency for the workload.
func (m GPUModel) Estimate(s Stats) Estimate {
	var rate float64
	traffic := float64(s.NNZA)*12 + float64(s.NNZB)*12 + s.Outputs*8
	if s.BDensity >= m.DenseThresholdB {
		// SpMM against an effectively dense B: GPUs "excel in dense
		// matrix multiplications due to their high-throughput
		// architecture" (§5.3); tiling keeps traffic at the operand
		// footprint.
		rate = m.DenseMACRate
	} else {
		// Generic SpGEMM path with warp divergence on imbalanced rows and
		// gather traffic for the B rows that overflow L2.
		rate = m.SparseMACRate * (1 + 2*s.BDensity)
		div := s.AImbalance - 1
		if div > m.DivergenceCap {
			div = m.DivergenceCap
		}
		rate /= 1 + div/m.DivergencePenalty
		missFrac := clamp01(1 - m.CacheBytes/max(1, float64(s.NNZB)*12))
		traffic += s.Flops * 4 * missFrac
	}
	compute := s.Flops / rate
	memory := traffic / m.MemBandwidth
	t := max(compute, memory) + m.LaunchOverhead + float64(s.NNZA+s.NNZB)*m.AnalysisPerNNZ
	return Estimate{Seconds: t, ComputeBound: compute >= memory}
}
