package misam

import (
	"context"
	"testing"
	"time"

	"misam/internal/mltree"
	"misam/internal/sim"
)

// fastTestPairs generates a deterministic mixed workload, with repeats so
// cache behaviour is exercised.
func fastTestPairs() [][2]*Matrix {
	var pairs [][2]*Matrix
	for i := int64(0); i < 6; i++ {
		pairs = append(pairs, [2]*Matrix{
			RandUniform(10+i, 160+int(i)*16, 160, 0.04),
			RandDense(20+i, 160, 64),
		})
		pairs = append(pairs, [2]*Matrix{
			RandPowerLaw(30+i, 200, 200, 2400, 1.8),
			RandUniform(40+i, 200, 96, 0.08),
		})
	}
	// Repeat the first third: the second pass must hit the cache the same
	// way on both pipelines under comparison.
	pairs = append(pairs, pairs[:len(pairs)/3]...)
	return pairs
}

// TestFastPathThresholdOneBitIdentical is the tentpole's correctness bar:
// with the gate at 1.0 the two-tier pipeline must behave exactly like the
// plain pipeline — same decisions, same deterministic report fields, same
// cache traffic — over a workload with cache hits, misses and repeats.
func TestFastPathThresholdOneBitIdentical(t *testing.T) {
	opts := TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5}
	plain, err := Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := Train(opts) // deterministic: identical models
	if err != nil {
		t.Fatal(err)
	}
	plain.WithCache(8 << 20)
	gated.WithCache(8 << 20).WithFastPath(FastPathConfig{Confidence: 1.0, VerifySample: 1})
	defer gated.Close()

	ctx := context.Background()
	for i, p := range fastTestPairs() {
		want, err := plain.Analyze(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := gated.AnalyzeFast(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		// Wall-clock fields differ run to run; everything deterministic
		// must be bit-identical.
		want.PreprocessSeconds, got.PreprocessSeconds = 0, 0
		want.InferenceSeconds, got.InferenceSeconds = 0, 0
		want.TotalSeconds, got.TotalSeconds = 0, 0
		if want != got {
			t.Fatalf("pair %d: reports diverge at threshold 1.0:\nplain: %+v\ngated: %+v", i, want, got)
		}
		if got.Path != PathFull {
			t.Fatalf("pair %d: path %q, want %q", i, got.Path, PathFull)
		}
	}

	ps, _ := plain.CacheStats()
	gs, _ := gated.CacheStats()
	if ps.Hits != gs.Hits || ps.Misses != gs.Misses || ps.Entries != gs.Entries {
		t.Fatalf("cache behaviour diverged: plain %+v, gated %+v", ps, gs)
	}
	if gs.FastHits != 0 || gs.FastMisses != 0 {
		t.Fatalf("disabled gate touched fast entries: %+v", gs)
	}
	st, ok := gated.FastPathStats()
	if !ok || st.Enabled || st.Fast != 0 || st.Served != st.Slow {
		t.Fatalf("fast-path stats at threshold 1.0 = %+v, want all-slow", st)
	}
	if st.Verifier.Offered != 0 {
		t.Fatalf("verifier offered %d jobs with the gate disabled", st.Verifier.Offered)
	}
}

// TestFastPathServesFromModel: with a permissive gate every request is
// answered from the model — no simulation fields, predicted latency in
// their place, counters all on the fast side.
func TestFastPathServesFromModel(t *testing.T) {
	gated, err := Train(TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gated.WithCache(8 << 20).WithFastPath(FastPathConfig{Confidence: 0.5, VerifySample: 0})
	defer gated.Close()

	ctx := context.Background()
	var fast, slow int
	for _, p := range fastTestPairs() {
		rep, err := gated.AnalyzeFast(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		switch rep.Path {
		case PathFast:
			fast++
			if rep.SimulatedSeconds != 0 || rep.Cycles != 0 || rep.PEUtilization != 0 || rep.EnergyJoules != 0 {
				t.Fatalf("fast report carries simulator fields: %+v", rep)
			}
			if rep.PredictedSeconds <= 0 {
				t.Fatalf("fast report has no predicted latency: %+v", rep)
			}
			if rep.Confidence < 0.5 {
				t.Fatalf("fast report confidence %v below the gate", rep.Confidence)
			}
			if rep.TotalSeconds < rep.PredictedSeconds {
				t.Fatalf("fast TotalSeconds %v excludes the predicted hardware time %v",
					rep.TotalSeconds, rep.PredictedSeconds)
			}
		case PathFull:
			slow++
			if rep.SimulatedSeconds <= 0 {
				t.Fatalf("full report has no simulated latency: %+v", rep)
			}
		default:
			t.Fatalf("unknown path %q", rep.Path)
		}
	}
	if fast == 0 {
		t.Fatal("no request cleared a 0.5 gate; the tree should be confident somewhere")
	}
	st, _ := gated.FastPathStats()
	if st.Served != int64(fast+slow) || st.Fast != int64(fast) || st.Slow != int64(slow) {
		t.Fatalf("counters %+v, want served=%d fast=%d slow=%d", st, fast+slow, fast, slow)
	}
	cs, _ := gated.CacheStats()
	if cs.FastMisses == 0 {
		t.Fatalf("fast path never used the features-only cache: %+v", cs)
	}
	t.Logf("coverage: %d/%d fast", fast, fast+slow)
}

// TestFastPathHighConfidenceAgreement: on the training corpus's
// high-confidence slice, the fast path's proposal must agree with the
// simulated argmin at (at least) the rate the tree's own accuracy
// predicts — the gate selects exactly the inputs the model knows well.
func TestFastPathHighConfidenceAgreement(t *testing.T) {
	fw := trainTest(t)
	snap := fw.Registry().Current()
	overall := mltree.Accuracy(fw.Selector.Tree.PredictBatch(fw.Corpus.X()), fw.Corpus.Labels())
	var n, agree int
	for _, s := range fw.Corpus.Samples {
		id, conf, _ := snap.SelectConfident(s.Features)
		if conf < 0.9 {
			continue
		}
		n++
		if id == s.Best {
			agree++
		}
	}
	if n == 0 {
		t.Fatal("no corpus sample cleared the 0.9 gate")
	}
	rate := float64(agree) / float64(n)
	t.Logf("high-confidence slice: %d/%d samples, agreement %.3f (overall accuracy %.3f)", n, len(fw.Corpus.Samples), rate, overall)
	if rate < overall-0.02 {
		t.Fatalf("high-confidence agreement %.3f is below overall accuracy %.3f — the gate is not selecting well-known inputs", rate, overall)
	}
	if rate < 0.85 {
		t.Fatalf("high-confidence agreement %.3f, want >= 0.85", rate)
	}
}

// TestFastPathVerifierFeedsOnlineLoop: fast-path hits must still produce
// labelled traces — via the background verifier — so drift detection has
// something to read.
func TestFastPathVerifierFeedsOnlineLoop(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fw.WithCache(8<<20).WithTraceCapture(256, 1)
	fw.WithFastPath(FastPathConfig{Confidence: 0.5, VerifySample: 1, VerifyWorkers: 2, VerifyQueue: 64})
	defer fw.Close()

	ctx := context.Background()
	for _, p := range fastTestPairs() {
		if _, err := fw.AnalyzeFast(ctx, p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := fw.DrainVerifier(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, _ := fw.FastPathStats()
	if st.Fast == 0 {
		t.Fatal("nothing served fast")
	}
	vs := st.Verifier
	if vs.Verified == 0 {
		t.Fatalf("verifier verified nothing: %+v", vs)
	}
	if vs.Verified+vs.Dropped+vs.Errors > vs.Offered || vs.Offered > st.Fast {
		t.Fatalf("verifier accounting broken: %+v with %d fast", vs, st.Fast)
	}
	if vs.Agreed > vs.Verified {
		t.Fatalf("agreed %d > verified %d", vs.Agreed, vs.Verified)
	}
	if fw.Traces().Len() == 0 {
		t.Fatal("no audit trace reached the online collector")
	}
	// The audit traces must be fully labelled (argmin + four latencies).
	for _, tr := range fw.Traces().Snapshot() {
		for id, sec := range tr.Seconds {
			if sec <= 0 {
				t.Fatalf("audit trace design %d has no simulated latency: %+v", id, tr)
			}
		}
	}
}

// TestFastPathPrunedVerify: with PrunedVerify the background audits run
// the pruned slow tier. The traces still carry an exact argmin label and
// strictly-worse entries for every loser; pruned losers are marked; and
// the exact-keyed analysis cache sees no audit traffic (pruned results
// must never populate it).
func TestFastPathPrunedVerify(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fw.WithCache(8<<20).WithTraceCapture(256, 1)
	fw.WithFastPath(FastPathConfig{Confidence: 0.5, VerifySample: 1, VerifyWorkers: 2, VerifyQueue: 64, PrunedVerify: true})
	defer fw.Close()

	ctx := context.Background()
	for _, p := range fastTestPairs() {
		if _, err := fw.AnalyzeFast(ctx, p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := fw.DrainVerifier(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, _ := fw.FastPathStats()
	if st.Verifier.Verified == 0 {
		t.Fatalf("verifier verified nothing: %+v", st.Verifier)
	}
	traces := fw.Traces().Snapshot()
	if len(traces) == 0 {
		t.Fatal("no audit trace reached the collector")
	}
	for _, tr := range traces {
		if tr.Pruned[tr.Best] {
			t.Fatalf("audit trace's Best %v is marked pruned: %+v", tr.Best, tr)
		}
		for id, sec := range tr.Seconds {
			if sec <= 0 {
				t.Fatalf("audit trace design %d has no latency: %+v", id, tr)
			}
			if sim.DesignID(id) != tr.Best && sec <= tr.Seconds[tr.Best] {
				t.Fatalf("audit trace design %d (%.6g s) not strictly worse than Best %v (%.6g s)",
					id, sec, tr.Best, tr.Seconds[tr.Best])
			}
		}
	}
	// Fast-path hits use the salted features-only keyspace; with pruned
	// audits bypassing AnalysisFor, only explicit slow-path requests may
	// touch the full-analysis entries. All audits were pruned, so the
	// full-entry traffic must equal the slow-path request count.
	cs, _ := fw.CacheStats()
	if cs.Hits+cs.Misses != st.Slow {
		t.Fatalf("pruned audits leaked into the analysis cache: %d full-entry lookups for %d slow requests (stats %+v)",
			cs.Hits+cs.Misses, st.Slow, cs)
	}
}

// TestFastPathSlowEverySampling: the deterministic 1-in-N slow-path
// sample keeps full simulation on the request path even when every
// request clears the gate.
func TestFastPathSlowEverySampling(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fw.WithCache(8 << 20).WithFastPath(FastPathConfig{Confidence: 0.0, SlowEvery: 3, VerifySample: 0})
	defer fw.Close()
	ctx := context.Background()
	for _, p := range fastTestPairs() {
		if _, err := fw.AnalyzeFast(ctx, p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := fw.FastPathStats()
	if st.Slow == 0 {
		t.Fatalf("SlowEvery sampled nothing: %+v", st)
	}
	if st.Fast+st.Slow != st.Served {
		t.Fatalf("served %d != fast %d + slow %d", st.Served, st.Fast, st.Slow)
	}
	// With a gate every request passes, exactly 1-in-3 gate passes are
	// diverted.
	if want := st.Served / 3; st.Slow != want {
		t.Fatalf("slow %d, want %d of %d served", st.Slow, want, st.Served)
	}
}
